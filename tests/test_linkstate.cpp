#include "linkstate/link_state.hpp"

#include <gtest/gtest.h>

namespace rofl::linkstate {
namespace {

struct Fixture {
  graph::Graph g{4};
  sim::Simulator sim;
  Fixture() {
    // 0 - 1 - 2 - 3 with a backup edge 0-3.
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    g.add_edge(2, 3, 3.0);
    g.add_edge(0, 3, 10.0);
  }
};

TEST(LinkState, PathAndNextHop) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  const auto p = m.path(0, 2);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(m.next_hop(0, 2), 1u);
  EXPECT_EQ(m.hop_distance(0, 2), 2u);
  EXPECT_DOUBLE_EQ(*m.latency_ms(0, 2), 3.0);
}

TEST(LinkState, NextHopToSelf) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  EXPECT_EQ(m.next_hop(1, 1), 1u);
}

TEST(LinkState, ReroutesAroundFailedLink) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  EXPECT_EQ(m.next_hop(0, 3), 3u);  // weight: direct edge is 1 hop weight 1
  m.fail_link(0, 3);
  EXPECT_EQ(m.next_hop(0, 3), 1u);  // now via the chain
  m.restore_link(0, 3);
  EXPECT_EQ(m.next_hop(0, 3), 3u);
}

TEST(LinkState, NodeFailureDisconnects) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  m.fail_link(0, 3);
  m.fail_node(1);
  EXPECT_FALSE(m.reachable(0, 2));
  EXPECT_EQ(m.next_hop(0, 2), std::nullopt);
  m.restore_node(1);
  EXPECT_TRUE(m.reachable(0, 2));
}

TEST(LinkState, VersionBumpsOnEveryEvent) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  const auto v0 = m.version();
  m.fail_link(0, 1);
  EXPECT_GT(m.version(), v0);
  m.restore_link(0, 1);
  EXPECT_GT(m.version(), v0 + 1);
}

TEST(LinkState, ListenersNotified) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  std::vector<TopologyEvent::Kind> seen;
  m.subscribe([&](const TopologyEvent& ev) { seen.push_back(ev.kind); });
  m.fail_link(0, 1);
  m.fail_node(2);
  m.restore_node(2);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], TopologyEvent::Kind::kLinkDown);
  EXPECT_EQ(seen[1], TopologyEvent::Kind::kNodeDown);
  EXPECT_EQ(seen[2], TopologyEvent::Kind::kNodeUp);
}

TEST(LinkState, FloodingChargedToCounters) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  EXPECT_EQ(f.sim.counters().get(sim::MsgCategory::kLinkState), 0u);
  m.fail_link(0, 1);
  // Remaining live directed adjacencies: (1-2, 2-3, 0-3) * 2 = 6.
  EXPECT_EQ(f.sim.counters().get(sim::MsgCategory::kLinkState), 6u);
}

TEST(LinkState, RouteValidTracksTopology) {
  Fixture f;
  LinkStateMap m(&f.g, &f.sim);
  const std::vector<graph::NodeIndex> route{0, 1, 2};
  EXPECT_TRUE(m.route_valid(route));
  m.fail_link(1, 2);
  EXPECT_FALSE(m.route_valid(route));
  m.restore_link(1, 2);
  m.fail_node(1);
  EXPECT_FALSE(m.route_valid(route));
}

TEST(LinkState, NullSimAllowed) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  LinkStateMap m(&g, nullptr);
  m.fail_link(0, 1);  // must not crash on accounting
  EXPECT_FALSE(m.reachable(0, 1));
}

}  // namespace
}  // namespace rofl::linkstate
