// fig6_stretch_cache -- regenerates Figure 6a: intradomain stretch as a
// function of pointer-cache size (entries per router), for the four
// Rocketfuel-like ISPs.
//
// Paper reference: with small caches stretch can be high; with roughly
// 70,000 entries (a 9 Mbit TCAM of 128-bit IDs) it drops to about 2, and the
// summary table reports 1.2-2 with 9 Mbit of cache.  The knee sits where the
// cache holds a large fraction of the live IDs, which is the shape this
// bench reproduces at its own scale.
#include <iostream>

#include "bench_common.hpp"
#include "rofl/network.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

double measure_stretch(graph::RocketfuelAs which, std::size_t cache_entries,
                       std::size_t ids, std::size_t packets) {
  Rng trng(bench::kSeed);
  const graph::IspTopology topo = graph::make_rocketfuel_like(which, trng);
  intra::Config cfg;
  cfg.cache_capacity = cache_entries;
  intra::Network net(&topo, cfg, bench::kSeed + 2);

  std::vector<NodeId> joined;
  joined.reserve(ids);
  for (std::size_t i = 0; i < ids; ++i) {
    const auto gw =
        static_cast<graph::NodeIndex>(net.rng().index(net.router_count()));
    const Identity ident = Identity::generate(net.rng());
    if (net.join_host(ident, gw).ok) joined.push_back(ident.id());
  }

  SampleSet stretch;
  for (std::size_t i = 0; i < packets; ++i) {
    const NodeId dest = joined[net.rng().index(joined.size())];
    const auto src =
        static_cast<graph::NodeIndex>(net.rng().index(net.router_count()));
    const intra::RouteStats rs = net.route(src, dest);
    if (rs.delivered && rs.shortest_hops > 0) stretch.add(rs.stretch());
  }
  return stretch.empty() ? 0.0 : stretch.mean();
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::size_t ids = bench::full_scale() ? 20'000 : 4'000;
  const std::size_t packets = bench::full_scale() ? 5'000 : 1'500;
  const std::vector<std::size_t> cache_sizes =
      bench::full_scale()
          ? std::vector<std::size_t>{1, 10, 100, 1'000, 10'000, 70'000}
          : std::vector<std::size_t>{1, 10, 100, 1'000, 4'000, 70'000};

  print_banner(std::cout,
               "Figure 6a: stretch vs pointer-cache size [entries/router]");
  Table t({"cache entries", "AS1221", "AS1239", "AS3257", "AS3967"});
  for (const std::size_t cap : cache_sizes) {
    std::vector<Table::Cell> row{static_cast<std::int64_t>(cap)};
    for (const auto which : graph::all_rocketfuel_ases()) {
      row.push_back(measure_stretch(which, cap, ids, packets));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nPaper reference: stretch falls monotonically with cache "
               "size; ~2 at 70k entries (9 Mbit), 1.2-2 across the four "
               "ISPs at that operating point.  (The knee tracks the ratio "
               "of cache size to live IDs: " << ids << " IDs here.)\n";
  return 0;
}
