// fig6_memory -- regenerates Figure 6c: average router memory (routing
// entries) as a function of the number of IDs, plus the resident-state
// figures from the "Memory requirements" paragraph.
//
// Paper reference: ROFL's per-router state grows slowly (ring pointers are
// O(1) per resident ID plus a bounded cache), while CMU-ETHERNET stores
// every host at every router -- 34-1200x more.  Hosting state is 1.3 Mbit
// (AS3257) to 10.5 Mbit (AS1239) for the paper's host populations.
#include <iostream>

#include "baselines/cmu_ethernet.hpp"
#include "bench_common.hpp"
#include "rofl/network.hpp"
#include "util/table.hpp"

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::size_t max_ids = bench::full_scale() ? 30'000 : 6'000;
  const std::size_t cache_cap = 1024;

  print_banner(std::cout,
               "Figure 6c: mean routing entries per router vs IDs joined");
  Table t({"ISP", "IDs", "ROFL entries/router", "CMU entries/router",
           "CMU/ROFL"});
  Table hosting({"ISP", "IDs", "resident state [Mbit]"});

  for (const auto which : graph::all_rocketfuel_ases()) {
    Rng trng(bench::kSeed);
    const graph::IspTopology topo = graph::make_rocketfuel_like(which, trng);
    intra::Config cfg;
    cfg.cache_capacity = cache_cap;
    intra::Network net(&topo, cfg, bench::kSeed + 4);
    baselines::CmuEthernet cmu(&topo);

    std::size_t next_report = 10;
    for (std::size_t n = 1; n <= max_ids; ++n) {
      const auto gw =
          static_cast<graph::NodeIndex>(net.rng().index(net.router_count()));
      const Identity ident = Identity::generate(net.rng());
      if (!net.join_host(ident, gw).ok) continue;
      (void)cmu.join_host(Identity::generate(net.rng()).id(), gw);
      if (n == next_report || n == max_ids) {
        const double rofl_entries = net.mean_state_entries();
        const double cmu_entries =
            static_cast<double>(cmu.entries_per_router());
        t.add_row({topo.name, static_cast<std::int64_t>(n), rofl_entries,
                   cmu_entries,
                   rofl_entries > 0 ? cmu_entries / rofl_entries : 0.0});
        next_report *= 10;
      }
    }
    hosting.add_row({topo.name, static_cast<std::int64_t>(max_ids),
                     static_cast<double>(net.resident_state_bits()) / 1e6});
  }
  t.print(std::cout);
  std::cout << "\nPaper reference: CMU-ETHERNET requires 34-1200x more "
               "memory than ROFL; the gap widens with the number of IDs.\n";

  print_banner(std::cout, "Hosting-state memory (128-bit resident IDs)");
  hosting.print(std::cout);
  std::cout << "Paper reference: 1.3 Mbit (AS3257) to 10.5 Mbit (AS1239) at "
               "the full per-ISP host populations (0.5M-10M hosts).\n";
  return 0;
}
