// table.hpp -- aligned table / CSV emission for the benchmark harness.
//
// Each bench binary regenerates one figure or table from the paper; this
// helper prints the series with aligned columns on stdout (and optionally as
// CSV) so the output can be compared against the published plot by eye or by
// script.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace rofl {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  using Cell = std::variant<std::string, double, std::int64_t>;

  /// Appends a row; must match the header count.
  void add_row(std::vector<Cell> cells);

  /// Pretty-prints with aligned columns.
  void print(std::ostream& os) const;

  /// Emits CSV (no quoting beyond commas -> semicolons in strings).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  [[nodiscard]] static std::string render(const Cell& c);
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

/// Prints a figure/table banner: "== Figure 6a: ... ==".
void print_banner(std::ostream& os, const std::string& title);

}  // namespace rofl
