// node_id.hpp -- 128-bit flat labels on a circular namespace.
//
// ROFL (SIGCOMM'06, section 2.1) routes on flat, semantics-free 128-bit
// identifiers arranged on a mod-2^128 ring, with Chord-style successor /
// predecessor relationships.  This header provides the identifier value type
// and all the ring arithmetic used by the intradomain and interdomain
// protocols: clockwise distance, half-open/closed interval membership, and
// the "closest without overshooting" comparison that drives greedy
// forwarding (Algorithm 2 of the paper).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace rofl {

/// A 128-bit flat label in the circular namespace.
///
/// Values are ordered as unsigned 128-bit integers (hi word most
/// significant).  The total order is only used for tie-breaking and storage;
/// routing logic always uses the ring relations below.
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr NodeId(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  /// Convenience constructor for small IDs (common in tests).
  static constexpr NodeId from_u64(std::uint64_t lo) { return NodeId{0, lo}; }

  /// Builds an ID from the first 16 bytes of a hash digest (big-endian).
  static NodeId from_bytes(const std::array<std::uint8_t, 16>& bytes);

  [[nodiscard]] constexpr std::uint64_t hi() const { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const { return lo_; }

  friend constexpr bool operator==(const NodeId&, const NodeId&) = default;
  friend constexpr std::strong_ordering operator<=>(const NodeId& a,
                                                    const NodeId& b) {
    if (auto c = a.hi_ <=> b.hi_; c != std::strong_ordering::equal) return c;
    return a.lo_ <=> b.lo_;
  }

  /// Ring addition: (*this + delta) mod 2^128.
  [[nodiscard]] constexpr NodeId plus(const NodeId& delta) const {
    const std::uint64_t lo = lo_ + delta.lo_;
    const std::uint64_t carry = (lo < lo_) ? 1u : 0u;
    return NodeId{hi_ + delta.hi_ + carry, lo};
  }

  /// Ring subtraction: (*this - delta) mod 2^128.
  [[nodiscard]] constexpr NodeId minus(const NodeId& delta) const {
    const std::uint64_t lo = lo_ - delta.lo_;
    const std::uint64_t borrow = (lo_ < delta.lo_) ? 1u : 0u;
    return NodeId{hi_ - delta.hi_ - borrow, lo};
  }

  /// Clockwise (increasing-ID) distance from `from` to `to` on the ring.
  [[nodiscard]] static constexpr NodeId distance_cw(const NodeId& from,
                                                    const NodeId& to) {
    return to.minus(from);
  }

  /// True iff `x` lies in the ring interval (a, b] walking clockwise from a.
  /// By Chord convention an empty span (a == b) denotes the full ring: the
  /// clockwise walk from a (exclusive) wraps all the way around and ends at
  /// b == a (inclusive), so every x -- including x == a, which is reached as
  /// the closing endpoint -- is inside.
  [[nodiscard]] static constexpr bool in_interval_oc(const NodeId& a,
                                                     const NodeId& x,
                                                     const NodeId& b) {
    if (a == b) return true;  // full ring, closed at b == a
    return distance_cw(a, x) <= distance_cw(a, b) && x != a;
  }

  /// True iff `x` lies in (a, b) walking clockwise from a (exclusive ends).
  [[nodiscard]] static constexpr bool in_interval_oo(const NodeId& a,
                                                     const NodeId& x,
                                                     const NodeId& b) {
    if (a == b) return x != a;  // full ring minus the endpoint
    return distance_cw(a, x) < distance_cw(a, b) && x != a;
  }

  /// Greedy-forwarding comparison (Algorithm 2): among candidate next-hop
  /// IDs, we pick the one with the smallest clockwise distance to `dest`,
  /// i.e. the candidate "closest, but not past, the destination" when
  /// walking clockwise from the current ID.  `closer_to` returns true when
  /// `a` is strictly closer to dest than `b` in that clockwise metric.
  [[nodiscard]] static constexpr bool closer_to(const NodeId& dest,
                                                const NodeId& a,
                                                const NodeId& b) {
    return distance_cw(a, dest) < distance_cw(b, dest);
  }

  /// Returns bit `i` counting from the most significant bit (bit 0 = MSB).
  [[nodiscard]] constexpr unsigned bit(unsigned i) const {
    return (i < 64) ? ((hi_ >> (63 - i)) & 1u)
                    : ((lo_ >> (127 - i)) & 1u);
  }

  /// Returns the b-bit digit starting at bit position `i` (MSB-first), used
  /// by the prefix-based proximity finger tables (section 4.1).  Requires
  /// i + b <= 128 and b <= 64.
  [[nodiscard]] std::uint64_t digit(unsigned i, unsigned b) const;

  /// Length (in bits) of the longest common MSB-first prefix with `other`.
  [[nodiscard]] unsigned common_prefix_len(const NodeId& other) const;

  /// Builds the ID whose first `prefix_bits` bits are copied from
  /// `prefix_src`, whose next `digit_bits` bits hold `digit`, and whose
  /// remaining low bits are all zero (`fill_ones` false) or all one (true).
  /// Used by the prefix finger tables to bound the range of IDs matching a
  /// table slot.  Requires prefix_bits + digit_bits <= 128, digit_bits <= 64.
  [[nodiscard]] static NodeId compose(const NodeId& prefix_src,
                                      unsigned prefix_bits,
                                      std::uint64_t digit,
                                      unsigned digit_bits, bool fill_ones);

  /// Short hex rendering "hhhh:llll" (leading zeros trimmed per word) for
  /// logs and test diagnostics.
  [[nodiscard]] std::string to_string() const;

  /// Parses the to_string() rendering back; nullopt on malformed input
  /// (missing colon, non-hex digits, words wider than 64 bits).
  [[nodiscard]] static std::optional<NodeId> from_string(std::string_view s);

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

std::ostream& operator<<(std::ostream& os, const NodeId& id);

/// Zero element of the namespace; the "zero-ID" partition-repair protocol
/// (section 3.2) distributes the live ID closest to this value.
inline constexpr NodeId kZeroId{};

}  // namespace rofl

template <>
struct std::hash<rofl::NodeId> {
  std::size_t operator()(const rofl::NodeId& id) const noexcept {
    // splitmix-style combine of the two words.
    std::uint64_t x = id.hi() * 0x9E3779B97F4A7C15ull ^ id.lo();
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};
