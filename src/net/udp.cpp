#include "net/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>

namespace rofl::net {

namespace {

sockaddr_in localhost_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(RouterId self, std::uint16_t port,
                           std::size_t ring_capacity)
    : Transport(self), ring_(ring_capacity) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("UdpTransport: socket() failed");

  // A join storm against one router can burst well past the default buffer;
  // ask for more and take whatever the kernel grants.
  int buf = 4 * 1024 * 1024;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));

  // Short receive timeout so the RX thread notices stop() promptly without
  // needing a signal or a self-pipe.
  timeval tv{};
  tv.tv_usec = 100 * 1000;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  sockaddr_in addr = localhost_addr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("UdpTransport: bind() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("UdpTransport: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  rx_thread_ = std::thread([this] { rx_loop(); });
}

UdpTransport::~UdpTransport() {
  stop();
  // Drain heap-allocated datagrams still sitting in the ring.
  std::vector<std::uint8_t>* d = nullptr;
  while (ring_.pop(d)) delete d;
}

void UdpTransport::set_peer(RouterId id, std::uint16_t port) {
  peers_[id] = port;
}

void UdpTransport::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (rx_thread_.joinable()) rx_thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

double UdpTransport::wall_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void UdpTransport::raw_send(RouterId dst, std::vector<std::uint8_t> datagram) {
  const auto it = peers_.find(dst);
  if (it == peers_.end()) return;  // unknown peer: counts as sent, lands nowhere
  const sockaddr_in addr = localhost_addr(it->second);
  // EAGAIN/ENOBUFS under burst is loss to the protocol; retry/backoff covers
  // it like any other drop, so no error handling here.
  (void)::sendto(fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
}

double UdpTransport::throttle_wait(double /*now_ms*/, double wait_ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      std::min(wait_ms, 50.0)));
  return wall_ms();
}

bool UdpTransport::poll(RxFrame& out) {
  std::vector<std::uint8_t>* d = nullptr;
  while (ring_.pop(d)) {
    const bool deliver = ingest(*d, out);
    delete d;
    if (deliver) return true;
  }
  return false;
}

void UdpTransport::rx_loop() {
  std::vector<std::uint8_t> buf(kMaxDatagram);
  while (running_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0, nullptr,
                                 nullptr);
    if (n <= 0) continue;  // timeout or transient error: re-check running_
    auto* d = new std::vector<std::uint8_t>(buf.begin(), buf.begin() + n);
    if (!ring_.push(d)) {
      // Ring full: to the protocol this is network loss; count and drop.
      ring_dropped_.fetch_add(1, std::memory_order_relaxed);
      delete d;
    }
  }
}

}  // namespace rofl::net
