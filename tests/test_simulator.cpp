#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <vector>

namespace rofl::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_in(5.0, [&] { order.push_back(2); });
  s.schedule_in(1.0, [&] { order.push_back(1); });
  s.schedule_in(9.0, [&] { order.push_back(3); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now_ms(), 9.0);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_in(1.0, [&] { order.push_back(1); });
  s.schedule_in(1.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  s.schedule_in(1.0, [&] {
    ++fired;
    s.schedule_in(1.0, [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now_ms(), 2.0);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_in(1.0, [&] { ++fired; });
  s.schedule_in(10.0, [&] { ++fired; });
  EXPECT_EQ(s.run_until(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now_ms(), 5.0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
}

TEST(Simulator, MaxEventsBoundsRun) {
  Simulator s;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { s.schedule_in(1.0, loop); };
  s.schedule_in(0.0, loop);
  EXPECT_EQ(s.run(100), 100u);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtDeadline) {
  Simulator s;
  std::vector<int> fired;
  s.schedule_in(4.9, [&] { fired.push_back(1); });
  s.schedule_in(5.0, [&] { fired.push_back(2); });  // exactly t_ms
  s.schedule_in(5.0, [&] { fired.push_back(3); });  // tie at t_ms
  s.schedule_in(5.1, [&] { fired.push_back(4); });
  EXPECT_EQ(s.run_until(5.0), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now_ms(), 5.0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, RunUntilRunsZeroDelayChainsSpawnedAtDeadline) {
  Simulator s;
  int fired = 0;
  // An event at exactly t_ms reschedules itself with zero delay; run_until
  // must keep draining those same-timestamp events, not strand them.
  s.schedule_in(5.0, [&] {
    ++fired;
    s.schedule_in(0.0, [&] {
      ++fired;
      s.schedule_in(0.0, [&] { ++fired; });
    });
  });
  EXPECT_EQ(s.run_until(5.0), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(s.now_ms(), 5.0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator s;
  EXPECT_EQ(s.run_until(7.5), 0u);
  EXPECT_DOUBLE_EQ(s.now_ms(), 7.5);
  // A second, earlier deadline never moves the clock backwards.
  EXPECT_EQ(s.run_until(2.0), 0u);
  EXPECT_DOUBLE_EQ(s.now_ms(), 7.5);
}

TEST(Simulator, ManyEventsStayHeapOrderedAcrossMixedSchedules) {
  // Exercises the 4-ary heap with interleaved push/pop and duplicate
  // timestamps; execution must be globally (when, insertion-seq) ordered.
  Simulator s;
  std::vector<double> executed;
  for (int i = 0; i < 200; ++i) {
    const double when = static_cast<double>((i * 37) % 50);
    s.schedule_in(when, [&executed, when] { executed.push_back(when); });
  }
  EXPECT_EQ(s.run(), 200u);
  ASSERT_EQ(executed.size(), 200u);
  EXPECT_TRUE(std::is_sorted(executed.begin(), executed.end()));
}

TEST(Simulator, SmallCapturesStoreInline) {
  // The event hot path is allocation-free for captures up to the SBO budget;
  // larger closures take the boxed fallback but still execute correctly.
  struct Big {
    char pad[kActionBufferBytes + 16] = {};
  };
  int hits = 0;
  std::array<char, 40> small_payload{};
  Simulator::Action small_action([&hits, small_payload] {
    ++hits;
    (void)small_payload;
  });
  EXPECT_TRUE(small_action.is_inline());
  Big big_payload;
  Simulator::Action big_action([&hits, big_payload] {
    ++hits;
    (void)big_payload;
  });
  EXPECT_FALSE(big_action.is_inline());
  small_action();
  big_action();
  EXPECT_EQ(hits, 2);
}

TEST(Counters, AllSixCategoriesAccumulateIndependently) {
  Simulator s;
  const std::array<MsgCategory, kMsgCategoryCount> cats{
      MsgCategory::kJoin,      MsgCategory::kTeardown, MsgCategory::kRepair,
      MsgCategory::kLinkState, MsgCategory::kData,     MsgCategory::kControl};
  // Charge category i with i+1 messages from inside events.
  for (std::size_t i = 0; i < cats.size(); ++i) {
    s.schedule_in(static_cast<double>(i), [&s, &cats, i] {
      s.counters().add(cats[i], i + 1);
    });
  }
  s.run();
  std::uint64_t expect_total = 0;
  for (std::size_t i = 0; i < cats.size(); ++i) {
    EXPECT_EQ(s.counters().get(cats[i]), i + 1) << to_string(cats[i]);
    expect_total += i + 1;
  }
  EXPECT_EQ(s.counters().total(), expect_total);
  s.counters().reset();
  for (const MsgCategory c : cats) EXPECT_EQ(s.counters().get(c), 0u);
}

TEST(Counters, PerCategoryAccounting) {
  obs::Registry registry;
  Counters c(&registry);
  c.add(MsgCategory::kJoin, 3);
  c.add(MsgCategory::kData);
  EXPECT_EQ(c.get(MsgCategory::kJoin), 3u);
  EXPECT_EQ(c.get(MsgCategory::kData), 1u);
  EXPECT_EQ(c.get(MsgCategory::kTeardown), 0u);
  EXPECT_EQ(c.total(), 4u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(Counters, CategoryNames) {
  EXPECT_EQ(to_string(MsgCategory::kJoin), "join");
  EXPECT_EQ(to_string(MsgCategory::kRepair), "repair");
}

}  // namespace
}  // namespace rofl::sim
