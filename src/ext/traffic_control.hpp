// traffic_control.hpp -- routing control extensions (section 5.1).
//
// Two mechanisms:
//   * endpoint-based negotiation -- source and destination exchange their
//     (small) up-hierarchies with the first packets of a session and agree
//     on the subset of ASes allowed to carry the flow; the negotiated set
//     restricts which earliest-common-ancestor subtrees packets may use;
//   * traffic-engineering suffixes -- a multihomed host joins IDs (G, x_k),
//     one per provider; senders or intermediate routers vary the suffix to
//     steer which access link incoming traffic arrives on (this also
//     implements multi-address multihoming from section 4.2).
#pragma once

#include <vector>

#include "ext/group_id.hpp"
#include "interdomain/inter_network.hpp"

namespace rofl::ext {

/// The candidate transit set for a session: ASes in the intersection of the
/// two endpoints' up-hierarchies ("all paths that can be used to reach AS X
/// from AS Y traverse ASes in the intersection of X's and Y's
/// up-hierarchies").  Ordered by level above the destination, so a prefix of
/// the result is the natural "destination selects a subset" choice.
[[nodiscard]] std::vector<graph::AsIndex> negotiable_ases(
    const inter::InterNetwork& net, graph::AsIndex src_as,
    graph::AsIndex dst_as);

struct NegotiatedRouteResult {
  inter::InterRouteStats stats;
  /// True iff every transit AS on the path is covered by the negotiated set
  /// (i.e. lies in it or under one of its members).
  bool compliant = false;
};

/// Routes with the normal protocol, then checks the traversed path against
/// the negotiated set (the destination would drop non-compliant packets).
NegotiatedRouteResult route_negotiated(
    inter::InterNetwork& net, graph::AsIndex src_as, const NodeId& dest,
    const std::vector<graph::AsIndex>& allowed);

/// Traffic-engineering suffixes: joins (G, x_k) for each of the home AS's
/// k providers, each single-homed *through that provider's branch*.  Returns
/// the per-provider member IDs (index-aligned with `providers`).
struct TeBinding {
  std::vector<graph::AsIndex> providers;
  std::vector<NodeId> ids;  // ids[k] is reachable preferentially via providers[k]
  std::uint64_t join_messages = 0;
};

[[nodiscard]] TeBinding te_multihomed_join(inter::InterNetwork& net,
                                           const GroupId& host_group,
                                           graph::AsIndex home);

}  // namespace rofl::ext
