// types.hpp -- shared vocabulary of the intradomain ROFL protocol (section 2.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "util/identity.hpp"
#include "util/node_id.hpp"

namespace rofl::intra {

using graph::NodeIndex;

/// A hop-by-hop series of physically connected router indices from one
/// hosting router to another (section 2.1, "Source routes").
using SourceRoute = std::vector<NodeIndex>;

/// A ring pointer: some ID known to reside at a particular hosting router.
struct NeighborPtr {
  NodeId id;
  NodeIndex host = graph::kInvalidNode;

  friend bool operator==(const NeighborPtr&, const NeighborPtr&) = default;
};

/// Node classes from section 2.1.  Routers always participate fully; stable
/// hosts become ring members; ephemeral hosts only register a backpointer at
/// their predecessor and never serve as anyone's successor/predecessor.
enum class HostClass : std::uint8_t { kStable, kEphemeral };

/// Per-vnode routing state.  A hosting router spawns one VirtualNode per
/// resident ID (Algorithm 1).  The router's own identity lives in a special
/// "default" virtual node whose successors act as default routes.
struct VirtualNode {
  NodeId id;
  PublicKey pub{};
  NodeIndex home = graph::kInvalidNode;
  bool is_default = false;  // the router's own vnode
  HostClass host_class = HostClass::kStable;

  /// Successor group, nearest first (section 2.2, "Recovering": nodes hold
  /// multiple successors for resilience to ID failure).
  std::vector<NeighborPtr> successors;
  std::optional<NeighborPtr> predecessor;

  /// Routers traversed by the join control messages; the hosting router
  /// stores this list and uses it for the directed teardown flood on host
  /// failure (section 3.1/3.2).
  std::vector<NodeIndex> control_path;

  [[nodiscard]] const NeighborPtr* first_successor() const {
    return successors.empty() ? nullptr : &successors.front();
  }
};

/// Orders `p` into `owner`'s successor group (nearest in clockwise distance
/// first) and truncates to `k`.  Refreshes the host if the ID is already
/// present.  One binary-search pass: the group is sorted by clockwise
/// distance from owner.id, and distance from a fixed origin is injective,
/// so the insertion point found by lower_bound is also the only position a
/// duplicate of p.id could occupy.
inline void insert_sorted_successor(VirtualNode& owner, const NeighborPtr& p,
                                    std::size_t k) {
  if (p.id == owner.id) return;
  const NodeId d_new = NodeId::distance_cw(owner.id, p.id);
  const auto it = std::lower_bound(
      owner.successors.begin(), owner.successors.end(), d_new,
      [&owner](const NeighborPtr& s, const NodeId& d) {
        return NodeId::distance_cw(owner.id, s.id) < d;
      });
  if (it != owner.successors.end() && it->id == p.id) {
    it->host = p.host;
    return;
  }
  owner.successors.insert(it, p);
  if (owner.successors.size() > k) owner.successors.resize(k);
}

/// Drops every successor with the given ID from `owner`'s group.
inline void remove_successor(VirtualNode& owner, const NodeId& id) {
  std::erase_if(owner.successors,
                [&](const NeighborPtr& s) { return s.id == id; });
}

/// Outcome of a join (figures 5a/5b/5c).
struct JoinStats {
  bool ok = false;
  std::uint64_t messages = 0;  // network-level packets consumed by the join
  double latency_ms = 0.0;     // completion time (parallel messages overlap)
};

/// Outcome of routing one data packet (figures 6a/6b).
struct RouteStats {
  bool delivered = false;
  std::uint32_t physical_hops = 0;  // router-level hops traversed
  std::uint32_t ring_hops = 0;      // pointer switches en route
  double latency_ms = 0.0;
  std::uint32_t shortest_hops = 0;  // IGP shortest path for the same pair
  /// Flight-recorder id of this packet (0 when no recorder was installed);
  /// pass it to FlightRecorder::format_trace, or to InterNetwork::route to
  /// stitch an intradomain leg onto an interdomain flight.
  std::uint64_t trace_id = 0;

  [[nodiscard]] double stretch() const {
    if (!delivered || shortest_hops == 0) return 0.0;
    return static_cast<double>(physical_hops) /
           static_cast<double>(shortest_hops);
  }
};

/// Outcome of a failure-handling episode (teardown floods, repairs).
struct RepairStats {
  std::uint64_t messages = 0;
  std::uint32_t ids_rejoined = 0;
  std::uint32_t pointers_torn = 0;
};

}  // namespace rofl::intra
