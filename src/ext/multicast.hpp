// multicast.hpp -- multicast over ROFL (section 5.2).
//
// "A host wishing to join the multicast group G sends an anycast request
// towards a nearby member of G.  At each hop, the message adds a pointer
// corresponding to the group pointing back along the reverse path (path
// painting).  If the message intersects a router that is already part of the
// group, the packet does not traverse any further.  The end result is a tree
// composed of bidirectional links."  Senders forward copies out all tree
// links except the arrival link.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "ext/anycast.hpp"
#include "ext/group_id.hpp"
#include "rofl/network.hpp"

namespace rofl::ext {

class MulticastGroup {
 public:
  explicit MulticastGroup(GroupId g) : group_(std::move(g)) {}

  /// Single-source mode (section 5.2): "a more efficient tree can be
  /// constructed by having nodes route towards the source."  Must be set
  /// before the first join; the first member is expected at the source.
  void set_single_source(graph::NodeIndex source_router) {
    source_ = source_router;
  }

  struct JoinStats {
    bool ok = false;
    std::uint64_t messages = 0;
    bool intersected_tree = false;  // stopped early at an existing branch
  };

  /// Joins the host attached at `gateway`: the first member seeds the tree
  /// (and registers (G, suffix) in the ring so later anycast joins find it);
  /// later members paint the anycast path toward the nearest branch.
  JoinStats join(intra::Network& net, graph::NodeIndex gateway,
                 std::uint32_t suffix);

  /// Leaves: prunes the member flag and any now-dangling leaf branches.
  void leave(intra::Network& net, graph::NodeIndex gateway);

  struct SendStats {
    std::uint32_t copies = 0;            // link transmissions on the tree
    std::uint32_t members_reached = 0;   // member routers receiving the packet
  };

  /// Multicasts one packet from a member at `from_gateway` along the painted
  /// tree.
  SendStats send(intra::Network& net, graph::NodeIndex from_gateway) const;

  [[nodiscard]] const std::set<graph::NodeIndex>& member_routers() const {
    return members_;
  }
  [[nodiscard]] std::size_t tree_router_count() const { return adj_.size(); }

  /// Structural invariant: the painted links form one connected acyclic
  /// component covering all members.
  [[nodiscard]] bool verify_tree() const;

 private:
  void paint(graph::NodeIndex a, graph::NodeIndex b);

  GroupId group_;
  std::optional<graph::NodeIndex> source_;
  std::uint32_t seed_suffix_ = 0;
  // Bidirectional group pointers per router (section 5.2).
  std::map<graph::NodeIndex, std::set<graph::NodeIndex>> adj_;
  std::set<graph::NodeIndex> members_;
};

}  // namespace rofl::ext
