#include "rofl/pointer_cache.hpp"

#include <algorithm>

namespace rofl::intra {

void PointerCache::insert(const NodeId& id, NodeIndex host, SourceRoute path) {
  if (capacity_ == 0) return;
  auto [it, inserted] = entries_.insert_or_assign(
      id, CacheEntry{id, host, std::move(path)});
  (void)it;
  if (inserted && entries_.size() > capacity_) evict_lru();
  touch(id);
}

const CacheEntry* PointerCache::best_match(const NodeId& dest) {
  if (entries_.empty()) {
    ++misses_;
    return nullptr;
  }
  // Largest key <= dest in ring order == minimal clockwise distance to dest.
  auto it = entries_.upper_bound(dest);
  if (it == entries_.begin()) it = entries_.end();
  --it;
  ++hits_;
  touch(it->first);
  return &it->second;
}

const CacheEntry* PointerCache::find(const NodeId& id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

void PointerCache::erase(const NodeId& id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  entries_.erase(it);
  const auto tick_it = tick_of_.find(id);
  if (tick_it != tick_of_.end()) {
    by_tick_.erase(tick_it->second);
    tick_of_.erase(tick_it);
  }
}

void PointerCache::invalidate_through_router(NodeIndex router) {
  std::vector<NodeId> dead;
  for (const auto& [id, entry] : entries_) {
    if (std::find(entry.path.begin(), entry.path.end(), router) !=
        entry.path.end()) {
      dead.push_back(id);
    }
  }
  for (const NodeId& id : dead) erase(id);
}

void PointerCache::invalidate_through_link(NodeIndex u, NodeIndex v) {
  std::vector<NodeId> dead;
  for (const auto& [id, entry] : entries_) {
    for (std::size_t i = 0; i + 1 < entry.path.size(); ++i) {
      if ((entry.path[i] == u && entry.path[i + 1] == v) ||
          (entry.path[i] == v && entry.path[i + 1] == u)) {
        dead.push_back(id);
        break;
      }
    }
  }
  for (const NodeId& id : dead) erase(id);
}

void PointerCache::clear() {
  entries_.clear();
  by_tick_.clear();
  tick_of_.clear();
}

void PointerCache::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (entries_.size() > capacity_) evict_lru();
}

void PointerCache::touch(const NodeId& id) {
  const auto tick_it = tick_of_.find(id);
  if (tick_it != tick_of_.end()) by_tick_.erase(tick_it->second);
  by_tick_[next_tick_] = id;
  tick_of_[id] = next_tick_;
  ++next_tick_;
}

void PointerCache::evict_lru() {
  if (by_tick_.empty()) return;
  const auto oldest = by_tick_.begin();
  entries_.erase(oldest->second);
  tick_of_.erase(oldest->second);
  by_tick_.erase(oldest);
}

}  // namespace rofl::intra
