// hybrid_internet -- the full two-level picture: interdomain ROFL over
// router-level ISPs (section 4.1, "Integrating EGP and IGP routing").
//
// Three transit ISPs get real Rocketfuel-like router maps; border routers
// are pinned per AS adjacency and flood their existence internally (the
// iBGP-analog redistribution).  An end-to-end packet trip is then measured
// at BOTH levels: AS hops from the interdomain protocol, and router hops
// once each transit interior is expanded ingress-border -> egress-border.
//
//   $ ./build/examples/hybrid_internet
#include <iostream>

#include "interdomain/border.hpp"
#include "util/stats.hpp"

int main() {
  using namespace rofl;
  using graph::AsRel;

  //      T1a ~~~ T1b       two tier-1s (both with router-level maps)
  //      /  \      \ .
  //   mid    \      mid2   mid has a router map too
  //   /  \    \      |
  // stubA stubB stubC stubD
  enum : graph::AsIndex { T1a, T1b, mid, mid2, sA, sB, sC, sD, kCount };
  auto topo = graph::AsTopology::from_links(
      kCount, {{mid, T1a, AsRel::kProvider},
               {mid2, T1b, AsRel::kProvider},
               {sA, mid, AsRel::kProvider},
               {sB, mid, AsRel::kProvider},
               {sC, T1a, AsRel::kProvider},
               {sD, mid2, AsRel::kProvider},
               {T1a, T1b, AsRel::kPeer}});
  for (graph::AsIndex a : {sA, sB, sC, sD}) topo.set_host_count(a, 100);

  inter::InterNetwork net(&topo, inter::InterConfig{}, 2006);

  // Router-level maps for the transits.
  Rng trng(7);
  graph::IspTopology t1a_map =
      graph::make_rocketfuel_like(graph::RocketfuelAs::kAs3967, trng);
  graph::IspTopology t1b_map =
      graph::make_rocketfuel_like(graph::RocketfuelAs::kAs3257, trng);
  graph::IspParams mid_params;
  mid_params.name = "mid";
  mid_params.router_count = 60;
  mid_params.pop_count = 8;
  graph::IspTopology mid_map = graph::make_isp_topology(mid_params, trng);

  intra::Network t1a_net(&t1a_map, intra::Config{}, 11);
  intra::Network t1b_net(&t1b_map, intra::Config{}, 12);
  intra::Network mid_net(&mid_map, intra::Config{}, 13);

  inter::BorderFabric fabric(&net);
  std::cout << "border routers: T1a=" << fabric.attach_isp(T1a, &t1a_net, 1)
            << " T1b=" << fabric.attach_isp(T1b, &t1b_net, 2)
            << " mid=" << fabric.attach_isp(mid, &mid_net, 3) << "\n";
  std::cout << "iBGP-analog border flooding: T1a=" << fabric.flood_cost(T1a)
            << " pkts, T1b=" << fabric.flood_cost(T1b)
            << " pkts, mid=" << fabric.flood_cost(mid) << " pkts\n\n";

  // Populate the stubs.
  std::vector<NodeId> ids;
  for (graph::AsIndex stub : {sA, sB, sC, sD}) {
    for (int i = 0; i < 8; ++i) {
      Identity ident = Identity::generate(net.rng());
      if (net.join_host(ident, stub,
                        inter::JoinStrategy::kRecursiveMultihomed)
              .ok) {
        ids.push_back(ident.id());
      }
    }
  }

  // Route from every stub to every ID and expand to router level.
  SampleSet as_hops, router_hops, interior;
  for (graph::AsIndex src : {sA, sB, sC, sD}) {
    for (const NodeId& dest : ids) {
      if (net.home_of(dest) == src) continue;
      std::vector<graph::AsIndex> trace;
      const auto rs = net.route(src, dest, &trace);
      if (!rs.delivered) continue;
      const auto ex = fabric.expand(trace);
      if (!ex.ok) continue;
      as_hops.add(static_cast<double>(rs.as_hops));
      router_hops.add(static_cast<double>(ex.router_hops));
      interior.add(static_cast<double>(ex.internal_hops));
    }
  }
  std::cout << "end-to-end over " << as_hops.count() << " flows:\n";
  std::cout << "  mean AS-level hops:       " << as_hops.mean() << "\n";
  std::cout << "  mean router-level hops:   " << router_hops.mean() << "\n";
  std::cout << "  mean transit-interior:    " << interior.mean()
            << " (hidden by the AS-level view)\n";
  std::cout << "\nThe interior share is what the paper's single-node-per-AS "
               "simulation abstracts away;\nborder-router state keeps it "
               "routable without any per-host state in the transit core.\n";
  return 0;
}
