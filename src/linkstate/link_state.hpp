// link_state.hpp -- the OSPF-like substrate ROFL runs over.
//
// Section 2.1 ("Source-Route Failure Detection"): ROFL assumes an underlying
// OSPF-like protocol that provides a network map (not routes to hosts),
// identifies link failures, finds paths to other hosting routers, and
// notifies the routing layer of link/node events.  This module implements
// that substrate over a graph::Graph:
//
//   * every router shares a consistent link-state database (the graph);
//   * shortest paths / next hops are computed on demand and cached, with the
//     cache invalidated whenever the topology version changes;
//   * fail/restore operations flood LSAs (accounted as kLinkState messages,
//     one per live directed edge, as OSPF flooding would) and synchronously
//     notify subscribed listeners -- the hook the ROFL failure machinery
//     (section 3.2) hangs off;
//   * small stable payloads (the zero-ID advertisements of the partition
//     repair protocol, and border-router existence in the interdomain
//     design) can be piggybacked on the flooding channel.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace rofl::linkstate {

using graph::NodeIndex;

struct TopologyEvent {
  enum class Kind : std::uint8_t { kLinkDown, kLinkUp, kNodeDown, kNodeUp };
  Kind kind;
  NodeIndex a = graph::kInvalidNode;  // node, or first link endpoint
  NodeIndex b = graph::kInvalidNode;  // second link endpoint (links only)
};

class LinkStateMap {
 public:
  /// Both pointers must outlive the map.  `sim` may be null when the caller
  /// does not need message accounting (unit tests).
  LinkStateMap(graph::Graph* g, sim::Simulator* sim);

  [[nodiscard]] const graph::Graph& topology() const { return *graph_; }
  [[nodiscard]] std::size_t router_count() const { return graph_->node_count(); }

  // -- map queries (always reflect the current topology version) -----------
  /// Next hop from `u` toward `v` along the IGP shortest path, or nullopt if
  /// unreachable.
  [[nodiscard]] std::optional<NodeIndex> next_hop(NodeIndex u, NodeIndex v) const;
  /// Full router path u..v (inclusive); empty if unreachable.
  [[nodiscard]] std::vector<NodeIndex> path(NodeIndex u, NodeIndex v) const;
  [[nodiscard]] bool reachable(NodeIndex u, NodeIndex v) const;
  /// Hop count of the IGP path, or nullopt if unreachable.
  [[nodiscard]] std::optional<std::uint32_t> hop_distance(NodeIndex u,
                                                          NodeIndex v) const;
  /// One-way propagation latency of the IGP path in milliseconds.
  [[nodiscard]] std::optional<double> latency_ms(NodeIndex u, NodeIndex v) const;

  /// True if a router-level source route is currently fully up.
  [[nodiscard]] bool route_valid(const std::vector<NodeIndex>& route) const;

  // -- failure / restore (flood LSAs + notify the routing layer) -----------
  void fail_link(NodeIndex u, NodeIndex v);
  void restore_link(NodeIndex u, NodeIndex v);
  void fail_node(NodeIndex u);
  void restore_node(NodeIndex u);

  using Listener = std::function<void(const TopologyEvent&)>;
  void subscribe(Listener listener);

  /// Counts one LSA flood over the current topology (also used by protocols
  /// that piggyback payloads -- zero-ID advertisements, border-router
  /// announcements -- on the link-state channel, section 3.2 / 4.1).  Each
  /// live directed edge carries `frame_bytes` on the byte counters; 0 means
  /// "a bare encoded LSA frame", measured from the wire codec once.
  void account_flood(sim::MsgCategory category = sim::MsgCategory::kLinkState,
                     std::size_t frame_bytes = 0);

  /// Monotonically increases on every topology change; cached SPF state
  /// anywhere in the system can use it for invalidation.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  // -- all-routers SPF recomputation ----------------------------------------
  /// Worker threads used by recompute_all_spf (0 = serial).  The default is
  /// ThreadPool::default_threads(); runs are byte-identical for every
  /// setting (see the determinism contract below).
  void set_spf_threads(std::size_t threads);
  [[nodiscard]] std::size_t spf_threads() const { return spf_threads_; }

  /// Recomputes the SPF for every router whose cache slot is stale, fanning
  /// the per-source Dijkstra runs across the worker pool.  Determinism
  /// contract: worker `i` writes only cache slot `i`, each Dijkstra depends
  /// only on the (shared, read-only) graph, and no listeners fire -- so
  /// routing tables, figure CSVs, and seeded runs are byte-identical to the
  /// serial path regardless of thread count or OS scheduling.  (Metric
  /// updates happen once, after the pool drains, from the calling thread;
  /// only the wall-clock SPF-duration histogram is machine-dependent.)  Called by the repair machinery after topology changes;
  /// on-demand spf() queries then hit warm slots.
  void recompute_all_spf() const;

 private:
  [[nodiscard]] const graph::ShortestPaths& spf(NodeIndex src) const;
  /// Drops stale cache slots if the topology version moved.
  void refresh_cache_epoch() const;
  void bump_version_and_notify(const TopologyEvent& ev);

  graph::Graph* graph_;
  sim::Simulator* sim_;
  std::uint64_t version_ = 1;
  std::vector<Listener> listeners_;

  // Observability ids in the simulator's registry (unset when sim_ == null):
  // SPF work, flood fan-out, and topology churn.
  obs::MetricId spf_runs_id_ = 0;
  obs::MetricId spf_recompute_ms_id_ = 0;
  obs::MetricId flood_fanout_id_ = 0;
  obs::MetricId floods_id_ = 0;
  obs::MetricId topo_events_id_ = 0;

  std::size_t spf_threads_;
  mutable std::unique_ptr<util::ThreadPool> pool_;  // built on first use
  mutable std::vector<std::optional<graph::ShortestPaths>> spf_cache_;
  mutable std::uint64_t spf_cache_version_ = 0;
};

}  // namespace rofl::linkstate
