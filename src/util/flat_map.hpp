// flat_map.hpp -- sorted-vector associative container for datapath state.
//
// The per-packet structures of the forwarder (vnode tables, ephemeral
// backpointers, greedy indices) are read-mostly and small-to-medium sized;
// a contiguous sorted vector beats a red-black tree on every lookup because
// the binary search touches O(log n) cache lines with no pointer chasing,
// and iteration is a linear scan.  Mutation (join/leave/repair) pays an
// O(n) memmove, which is cheap at these sizes and off the forwarding path.
//
// The interface mirrors the subset of std::map the datapath uses: find /
// contains / try_emplace / insert_or_assign / erase / range-for over
// std::pair<Key, Value>.  Iteration order is ascending key order, exactly
// like std::map, so code (and tests) that rely on sorted traversal keep
// working.  Pointers and iterators are invalidated by mutation, like any
// vector.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace rofl::util {

template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using storage_type = std::vector<value_type>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  [[nodiscard]] iterator begin() { return items_.begin(); }
  [[nodiscard]] iterator end() { return items_.end(); }
  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }

  [[nodiscard]] bool contains(const Key& k) const {
    const auto it = lower(k);
    return it != items_.end() && it->first == k;
  }

  [[nodiscard]] Value* find(const Key& k) {
    const auto it = lower(k);
    return (it != items_.end() && it->first == k) ? &it->second : nullptr;
  }
  [[nodiscard]] const Value* find(const Key& k) const {
    const auto it = lower(k);
    return (it != items_.end() && it->first == k) ? &it->second : nullptr;
  }

  /// First element with key > k (std::map::upper_bound semantics).
  [[nodiscard]] const_iterator upper_bound(const Key& k) const {
    return std::upper_bound(
        items_.begin(), items_.end(), k,
        [](const Key& key, const value_type& item) { return key < item.first; });
  }

  /// Inserts {k, Value(args...)} if absent.  Returns {pointer, inserted}.
  template <typename... Args>
  std::pair<Value*, bool> try_emplace(const Key& k, Args&&... args) {
    auto it = lower(k);
    if (it != items_.end() && it->first == k) return {&it->second, false};
    it = items_.emplace(it, std::piecewise_construct, std::forward_as_tuple(k),
                        std::forward_as_tuple(std::forward<Args>(args)...));
    return {&it->second, true};
  }

  /// Inserts or overwrites.  Returns {pointer, inserted}.
  std::pair<Value*, bool> insert_or_assign(const Key& k, Value v) {
    auto it = lower(k);
    if (it != items_.end() && it->first == k) {
      it->second = std::move(v);
      return {&it->second, false};
    }
    it = items_.emplace(it, k, std::move(v));
    return {&it->second, true};
  }

  /// Removes k if present; returns true when an element was erased.
  bool erase(const Key& k) {
    const auto it = lower(k);
    if (it == items_.end() || it->first != k) return false;
    items_.erase(it);
    return true;
  }

 private:
  [[nodiscard]] iterator lower(const Key& k) {
    return std::lower_bound(
        items_.begin(), items_.end(), k,
        [](const value_type& item, const Key& key) { return item.first < key; });
  }
  [[nodiscard]] const_iterator lower(const Key& k) const {
    return std::lower_bound(
        items_.begin(), items_.end(), k,
        [](const value_type& item, const Key& key) { return item.first < key; });
  }

  storage_type items_;
};

}  // namespace rofl::util
