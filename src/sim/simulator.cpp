#include "sim/simulator.hpp"

#include <cassert>
#include <numeric>

namespace rofl::sim {

std::string_view to_string(MsgCategory c) {
  switch (c) {
    case MsgCategory::kJoin: return "join";
    case MsgCategory::kTeardown: return "teardown";
    case MsgCategory::kRepair: return "repair";
    case MsgCategory::kLinkState: return "linkstate";
    case MsgCategory::kData: return "data";
    case MsgCategory::kControl: return "control";
  }
  return "?";
}

std::uint64_t Counters::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

void Simulator::schedule_in(double delay_ms, Action action) {
  assert(delay_ms >= 0.0);
  schedule_at(now_ms_ + delay_ms, std::move(action));
}

void Simulator::schedule_at(double when_ms, Action action) {
  assert(when_ms >= now_ms_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot] = std::move(action);
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(action));
  }
  queue_.push(HeapItem{when_ms, next_seq_++, slot});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const HeapItem item = queue_.pop();
  now_ms_ = item.when;
  // Move the payload out and recycle the slot before running it: the action
  // may schedule further events (growing or reusing the slab).
  Action action = std::move(slab_[item.slot]);
  free_slots_.push_back(item.slot);
  action();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(double t_ms) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().when <= t_ms && step()) ++n;
  now_ms_ = std::max(now_ms_, t_ms);
  return n;
}

}  // namespace rofl::sim
