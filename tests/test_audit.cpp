// Tests for the cross-layer invariant auditor (src/audit): detection of
// injected corruption, cleanliness on healthy and churning networks,
// deterministic churn replays, and the ddmin schedule shrinker.
#include "audit/auditor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "audit/churn.hpp"
#include "audit/shrink.hpp"
#include "obs/flight_recorder.hpp"
#include "rofl/session.hpp"

namespace rofl::audit {
namespace {

struct AuditNet {
  graph::IspTopology topo;
  std::unique_ptr<intra::Network> net;
  obs::FlightRecorder recorder{1 << 14};
  std::vector<Identity> hosts;

  explicit AuditNet(std::size_t routers = 30, std::size_t pops = 5,
                    intra::Config cfg = {}, std::uint64_t seed = 1234) {
    Rng trng(seed);
    graph::IspParams p;
    p.router_count = routers;
    p.pop_count = pops;
    topo = graph::make_isp_topology(p, trng);
    net = std::make_unique<intra::Network>(&topo, cfg, seed + 1);
    net->set_flight_recorder(&recorder);
  }

  NodeId join(graph::NodeIndex gw,
              intra::HostClass cls = intra::HostClass::kStable) {
    Identity ident = Identity::generate(net->rng());
    EXPECT_TRUE(net->join_host(ident, gw, cls).ok);
    hosts.push_back(ident);
    return ident.id();
  }

  void join_many(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      join(static_cast<graph::NodeIndex>(net->rng().index(net->router_count())));
    }
  }
};

bool has_check(const AuditReport& rep, std::string_view check,
               Severity severity, bool require_trace) {
  return std::any_of(rep.violations.begin(), rep.violations.end(),
                     [&](const Violation& v) {
                       return v.check == check && v.severity == severity &&
                              (!require_trace || v.trace_id != 0);
                     });
}

TEST(Auditor, HealthyNetworkAuditsClean) {
  AuditNet t;
  t.join_many(40);
  Auditor auditor(t.net.get());
  const AuditReport rep = auditor.run();
  EXPECT_GT(rep.checks, 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(auditor.total_hard(), 0u);
  EXPECT_EQ(auditor.total_soft(), 0u);
}

TEST(Auditor, InjectedStaleCachePointerDetectedWithTraceId) {
  AuditNet t;
  t.join_many(30);
  // A well-formed cache entry (valid route shape, live links) whose ID never
  // joined: exactly what a departed host leaves behind on routers off its
  // teardown path.  Expected verdict: soft staleness, stamped with a trace.
  const graph::NodeIndex i = 4;
  const graph::NodeIndex j = t.topo.graph.neighbors(i).front().to;
  const NodeId ghost(0xAAAAAAAAAAAAAAAAull, 0x1ull);
  ASSERT_FALSE(t.net->directory().contains(ghost));
  t.net->router(i).cache().insert(ghost, j, {i, j});

  Auditor auditor(t.net.get());
  const AuditReport rep = auditor.run();
  EXPECT_TRUE(has_check(rep, "intra.cache.stale-id", Severity::kSoft,
                        /*require_trace=*/true))
      << rep.to_string();
  EXPECT_EQ(rep.hard_count(), 0u) << rep.to_string();

  // The trace id resolves in the recorder to a kAuditViolation record naming
  // the ghost ID.
  const auto vit = std::find_if(
      rep.violations.begin(), rep.violations.end(),
      [](const Violation& v) { return v.check == "intra.cache.stale-id"; });
  ASSERT_NE(vit, rep.violations.end());
  const Violation& v = *vit;
  const auto hops = t.recorder.trace(v.trace_id);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops.front().kind, obs::HopKind::kAuditViolation);
  EXPECT_EQ(hops.front().chased, ghost);
}

TEST(Auditor, StructurallyBadCacheEntryIsHard) {
  AuditNet t;
  t.join_many(20);
  // Route shape violation: the cached source route does not start at the
  // caching router.  No protocol path ever writes this.
  const graph::NodeIndex i = 2;
  const graph::NodeIndex j = t.topo.graph.neighbors(i).front().to;
  const NodeId ghost(0xBBBBBBBBBBBBBBBBull, 0x2ull);
  t.net->router(i).cache().insert(ghost, j, {j});

  Auditor auditor(t.net.get());
  const AuditReport rep = auditor.run();
  EXPECT_TRUE(has_check(rep, "intra.cache.route-shape", Severity::kHard,
                        /*require_trace=*/true))
      << rep.to_string();
}

TEST(Auditor, BrokenSuccessorLinkDetectedWithTraceId) {
  AuditNet t;
  t.join_many(30);
  // Corrupt a live vnode's first successor to a never-joined ID -- the
  // "broken successor link" the repair machinery must never produce.
  const auto& [vid, home] = *t.net->directory().begin();
  intra::VirtualNode* vn = t.net->router(home).find_vnode(vid);
  ASSERT_NE(vn, nullptr);
  ASSERT_FALSE(vn->successors.empty());
  const NodeId bogus(0xCCCCCCCCCCCCCCCCull, 0x3ull);
  vn->successors.front().id = bogus;

  Auditor auditor(t.net.get());
  const AuditReport rep = auditor.run();
  EXPECT_GT(rep.hard_count(), 0u) << rep.to_string();
  EXPECT_TRUE(has_check(rep, "intra.ring.dangling", Severity::kHard,
                        /*require_trace=*/true))
      << rep.to_string();
}

TEST(Auditor, CleanAtEveryStepOfFaultFreeChurn) {
  // The severity model's core claim: fault-free, no operation sequence may
  // leave even transiently hard-violating state between operations.  (Soft
  // staleness -- e.g. cache entries for departed IDs off the teardown path --
  // is allowed and expected.)
  AuditNet t(25, 4, {}, 77);
  Auditor auditor(t.net.get());
  Rng op_rng(4001);
  std::vector<NodeId> live;
  std::set<graph::NodeIndex> downed;
  for (int op = 0; op < 80; ++op) {
    const std::uint64_t pick = op_rng.below(100);
    if (pick < 45 || live.size() < 5) {
      Identity ident = Identity::generate(t.net->rng());
      const auto gw = static_cast<graph::NodeIndex>(
          op_rng.index(t.net->router_count()));
      const auto cls = op_rng.chance(0.25) ? intra::HostClass::kEphemeral
                                           : intra::HostClass::kStable;
      if (t.net->join_host(ident, gw, cls).ok) live.push_back(ident.id());
    } else if (pick < 65 && !live.empty()) {
      const std::size_t v = op_rng.index(live.size());
      if (op_rng.chance(0.5)) {
        (void)t.net->fail_host(live[v]);
      } else {
        (void)t.net->leave_host(live[v]);
      }
      live.erase(live.begin() + static_cast<long>(v));
    } else if (pick < 80) {
      const auto r = static_cast<graph::NodeIndex>(
          op_rng.index(t.net->router_count()));
      if (downed.contains(r)) {
        (void)t.net->restore_router(r);
        downed.erase(r);
      } else if (t.topo.graph.node_up(r)) {
        t.topo.graph.set_node_up(r, false);
        const bool still = t.topo.graph.connected();
        t.topo.graph.set_node_up(r, true);
        if (still) {
          (void)t.net->fail_router(r);
          downed.insert(r);
        }
      }
    } else if (!live.empty()) {
      (void)t.net->route(static_cast<graph::NodeIndex>(
                             op_rng.index(t.net->router_count())),
                         live[op_rng.index(live.size())]);
    }
    const AuditReport rep = auditor.run();
    ASSERT_EQ(rep.hard_count(), 0u)
        << "op " << op << ":\n" << rep.to_string();
  }
}

TEST(Auditor, SessionChecksFlagOrphans) {
  AuditNet t(25, 4, {}, 31);
  t.join_many(10);
  intra::SessionManager sessions(*t.net, {});
  const NodeId tracked = t.hosts.front().id();
  sessions.track(tracked, [] { return true; });
  t.net->simulator().run_until(1500.0);  // at least one keepalive tick

  Auditor auditor(t.net.get(), nullptr, &sessions);
  EXPECT_EQ(auditor.run().hard_count(), 0u);

  // The host leaves the ring without detaching its session: the next audit
  // must flag the orphan as soft staleness (it retires on the next tick).
  (void)t.net->leave_host(tracked);
  const AuditReport rep = auditor.run();
  EXPECT_TRUE(has_check(rep, "session.orphan", Severity::kSoft,
                        /*require_trace=*/true))
      << rep.to_string();
  EXPECT_EQ(rep.hard_count(), 0u) << rep.to_string();
}

TEST(Auditor, ScheduledAuditsRideTheSimulatorClock) {
  AuditNet t(20, 4, {}, 5);
  t.join_many(10);
  Auditor auditor(t.net.get());
  auditor.schedule_every(10.0, 100.0);
  t.net->simulator().run_until(200.0);
  EXPECT_EQ(auditor.audits_run(), 10u);
  EXPECT_EQ(auditor.total_hard(), 0u);
  // The registry mirrors the run count.
  obs::Registry& reg = t.net->simulator().metrics();
  EXPECT_EQ(reg.counter_value(reg.counter("audit.runs")), 10u);
}

TEST(Auditor, InterdomainCleanAcrossChurnAndAsFlaps) {
  Rng trng(2001);
  graph::AsGenParams gp;
  gp.tier1_count = 3;
  gp.tier2_count = 6;
  gp.tier3_count = 12;
  gp.stub_count = 25;
  gp.total_hosts = 3000;
  const graph::AsTopology topo =
      graph::AsTopology::make_internet_like(gp, trng);
  inter::InterConfig cfg;
  cfg.fingers_per_id = 16;
  inter::InterNetwork net(&topo, cfg, 99);

  Auditor auditor(nullptr, &net);
  Rng op_rng(606);
  std::vector<NodeId> live;
  std::set<graph::AsIndex> downed;
  const inter::JoinStrategy strategies[] = {
      inter::JoinStrategy::kEphemeral, inter::JoinStrategy::kSingleHomed,
      inter::JoinStrategy::kRecursiveMultihomed,
      inter::JoinStrategy::kPeering};
  for (int op = 0; op < 60; ++op) {
    const std::uint64_t pick = op_rng.below(100);
    if (pick < 55 || live.size() < 5) {
      if (net.join_random_host(strategies[op_rng.index(4)]).ok) {
        live.push_back(net.directory().rbegin()->first);
      }
    } else if (pick < 75 && !live.empty()) {
      const std::size_t v = op_rng.index(live.size());
      (void)net.leave_host(live[v]);
      live.erase(live.begin() + static_cast<long>(v));
    } else if (pick < 90) {
      const auto a = static_cast<graph::AsIndex>(op_rng.index(topo.as_count()));
      if (downed.contains(a)) {
        (void)net.restore_as(a);
        downed.erase(a);
      } else if (net.base_topology().is_stub(a) && net.base_topology().as_up(a)) {
        (void)net.fail_as(a);
        downed.insert(a);
      }
    } else if (!downed.empty()) {
      const auto a = *downed.begin();
      (void)net.restore_as(a);
      downed.erase(a);
    }
    const AuditReport rep = auditor.run();
    ASSERT_EQ(rep.hard_count(), 0u)
        << "op " << op << ":\n" << rep.to_string();
  }
  for (const auto a : downed) (void)net.restore_as(a);
  const AuditReport final_rep = auditor.run();
  EXPECT_EQ(final_rep.hard_count(), 0u) << final_rep.to_string();
}

// ---------------------------------------------------------------------------
// churn harness

TEST(Churn, ScheduleIsDeterministicAndSorted) {
  ChurnConfig cfg;
  cfg.events = 150;
  const auto a = make_churn_schedule(cfg, 42);
  const auto b = make_churn_schedule(cfg, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_ms, b[i].t_ms);
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].pick, b[i].pick);
    EXPECT_EQ(a[i].ident.has_value(), b[i].ident.has_value());
    if (a[i].ident.has_value()) {
      EXPECT_EQ(a[i].ident->id(), b[i].ident->id());
    }
    if (i > 0) {
      EXPECT_GE(a[i].t_ms, a[i - 1].t_ms);
    }
  }
  // A different seed actually changes the schedule.
  const auto c = make_churn_schedule(cfg, 43);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].t_ms != c[i].t_ms || a[i].pick != c[i].pick;
  }
  EXPECT_TRUE(differs);
}

TEST(Churn, FaultFreeRunConvergesWithZeroHardViolations) {
  ChurnConfig cc;
  cc.events = 120;
  ChurnRunParams params;
  params.router_count = 30;
  params.pop_count = 5;
  params.initial_hosts = 30;
  params.seed = 7;
  const auto schedule = make_churn_schedule(cc, 7);
  const ChurnRunResult r = run_churn(params, schedule);
  EXPECT_TRUE(r.converged) << r.err;
  EXPECT_EQ(r.hard, 0u) << r.digest;
  EXPECT_GT(r.audits, 10u);
  EXPECT_GT(r.joins, 0u);
  EXPECT_GT(r.routes, 0u);
}

TEST(Churn, SameSeedRunsAreBitIdentical) {
  ChurnConfig cc;
  cc.events = 100;
  ChurnRunParams params;
  params.router_count = 28;
  params.pop_count = 4;
  params.initial_hosts = 24;
  params.seed = 11;
  const auto schedule = make_churn_schedule(cc, 11);
  const ChurnRunResult a = run_churn(params, schedule);
  const ChurnRunResult b = run_churn(params, schedule);
  ASSERT_TRUE(a.converged) << a.err;
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.audits, b.audits);
  EXPECT_EQ(a.hard, b.hard);
  EXPECT_EQ(a.soft, b.soft);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.delivered, b.delivered);
}

TEST(Churn, LossyRunConvergesAndReproduces) {
  ChurnConfig cc;
  cc.events = 100;
  ChurnRunParams params;
  params.router_count = 28;
  params.pop_count = 4;
  params.initial_hosts = 24;
  params.seed = 13;
  params.use_faults = true;
  params.faults.defaults.loss = 0.03;
  params.faults.defaults.duplicate = 0.01;
  const auto schedule = make_churn_schedule(cc, 13);
  const ChurnRunResult a = run_churn(params, schedule);
  const ChurnRunResult b = run_churn(params, schedule);
  EXPECT_TRUE(a.converged) << a.err;
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  // Message faults downgrade the churn-racy checks; structural invariants
  // (ring order fault classes the repair machinery owns) must stay at zero
  // hard even mid-loss.
  EXPECT_EQ(a.hard, 0u) << a.digest;
}

// ---------------------------------------------------------------------------
// shrinker

TEST(Shrink, FindsTheMinimalFailingSubset) {
  // Synthetic failure: the run "fails" iff events with pick 3 AND pick 7 are
  // both present.  ddmin must strip the other ten and report 1-minimality.
  std::vector<ChurnEvent> events;
  for (std::uint64_t i = 0; i < 12; ++i) {
    ChurnEvent e;
    e.t_ms = static_cast<double>(i);
    e.op = ChurnOp::kRoute;
    e.pick = i;
    events.push_back(e);
  }
  const auto fails = [](const std::vector<ChurnEvent>& s) {
    bool has3 = false;
    bool has7 = false;
    for (const ChurnEvent& e : s) {
      has3 |= e.pick == 3;
      has7 |= e.pick == 7;
    }
    return has3 && has7;
  };
  const ShrinkResult r = shrink_schedule(events, fails);
  EXPECT_TRUE(r.minimal);
  ASSERT_EQ(r.events.size(), 2u);
  EXPECT_EQ(r.events[0].pick, 3u);
  EXPECT_EQ(r.events[1].pick, 7u);
  EXPECT_GT(r.probes, 1u);
}

TEST(Shrink, NonFailingScheduleReturnsUnchanged) {
  std::vector<ChurnEvent> events(5);
  const ShrinkResult r =
      shrink_schedule(events, [](const std::vector<ChurnEvent>&) {
        return false;
      });
  EXPECT_FALSE(r.minimal);
  EXPECT_EQ(r.events.size(), 5u);
  EXPECT_EQ(r.probes, 1u);
}

TEST(Shrink, RespectsTheProbeBudget) {
  std::vector<ChurnEvent> events(64);
  for (std::uint64_t i = 0; i < events.size(); ++i) events[i].pick = i;
  std::size_t calls = 0;
  const ShrinkResult r = shrink_schedule(
      events,
      [&calls](const std::vector<ChurnEvent>& s) {
        ++calls;
        return s.size() >= 2;  // keeps failing until nearly empty
      },
      /*max_probes=*/10);
  EXPECT_EQ(r.probes, 10u);
  EXPECT_EQ(calls, 10u);
  EXPECT_FALSE(r.minimal);
}

}  // namespace
}  // namespace rofl::audit
