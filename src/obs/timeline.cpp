#include "obs/timeline.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "obs/trace_export.hpp"

namespace rofl::obs {

namespace {

void json_escape_into(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

/// Nearest-rank percentile over a window's bucket deltas, interpolated
/// across the bucket holding the rank.  Unlike Histogram::percentile there
/// is no observed min/max for a single window (only cumulative extremes
/// exist), so the first bucket interpolates from 0 and the overflow bucket
/// reports the last finite bound -- a documented, deterministic convention.
double window_percentile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& counts,
                         std::uint64_t total, double p) {
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(p * static_cast<double>(total))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (cum + counts[i] < rank) {
      cum += counts[i];
      continue;
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = i < bounds.size() ? bounds[i] : bounds.back();
    const double frac = counts[i] == 0 ? 1.0
                                       : static_cast<double>(rank - cum) /
                                             static_cast<double>(counts[i]);
    return lo + (hi - lo) * frac;
  }
  return bounds.back();
}

}  // namespace

Timeline::Timeline(const Registry* registry, Config cfg)
    : registry_(registry), cfg_(std::move(cfg)) {
  // A zero-width (or NaN/negative) window would make advance_to spin
  // closing windows forever; asserts vanish in Release builds, so sanitize
  // unconditionally back to the documented defaults.
  if (!std::isfinite(cfg_.window_ms) || cfg_.window_ms <= 0.0) {
    cfg_.window_ms = Config{}.window_ms;
  }
  if (cfg_.capacity == 0) cfg_.capacity = Config{}.capacity;
  if (registry_ != nullptr) {
    // Baseline snapshot: deltas are measured against the registry's state at
    // timeline creation, so pre-run setup activity lands in window 0 rather
    // than inflating it retroactively.
    refresh_names();
    prev_counters_.resize(registry_->counter_count());
    for (MetricId i = 0; i < prev_counters_.size(); ++i) {
      prev_counters_[i] = registry_->counter_value(i);
    }
    prev_hists_.resize(registry_->histogram_count());
    for (MetricId i = 0; i < prev_hists_.size(); ++i) {
      const Histogram& h = registry_->histogram_at(i);
      prev_hists_[i].count = h.count();
      prev_hists_[i].sum = h.sum();
      prev_hists_[i].buckets.resize(h.bucket_count());
      for (std::size_t b = 0; b < h.bucket_count(); ++b) {
        prev_hists_[i].buckets[b] = h.bucket(b);
      }
    }
  }
}

void Timeline::refresh_names() {
  for (MetricId i = static_cast<MetricId>(counter_names_.size());
       i < registry_->counter_count(); ++i) {
    counter_names_.push_back(registry_->counter_name(i));
  }
  for (MetricId i = static_cast<MetricId>(gauge_names_.size());
       i < registry_->gauge_count(); ++i) {
    gauge_names_.push_back(registry_->gauge_name(i));
  }
  for (MetricId i = static_cast<MetricId>(hist_names_.size());
       i < registry_->histogram_count(); ++i) {
    hist_names_.push_back(registry_->histogram_name(i));
    hist_bounds_.push_back(registry_->histogram_at(i).bounds());
  }
}

bool Timeline::excluded(const std::string& name) const {
  for (const std::string& sub : cfg_.exclude) {
    if (name.find(sub) != std::string::npos) return true;
  }
  return false;
}

void Timeline::advance_to(double t_ms) {
  // Window w covers [w*W, (w+1)*W); the number of fully-ended windows at
  // time t is floor(t / W).  The epsilon absorbs representation error when
  // t is an exact multiple of W; it is the same on every shard, so window
  // membership stays shard-count independent.
  close_through(
      static_cast<std::uint64_t>(std::floor(t_ms / cfg_.window_ms + 1e-9)));
}

void Timeline::flush(double t_ms) {
  close_through(
      static_cast<std::uint64_t>(std::floor(t_ms / cfg_.window_ms + 1e-9)) +
      1);
}

void Timeline::close_through(std::uint64_t target_closed) {
  assert(registry_ != nullptr && "merge-only timelines cannot sample");
  while (closed_ < target_closed) {
    close_one();
  }
}

void Timeline::close_one() {
  refresh_names();
  Window w;
  w.index = closed_;

  // All registry activity since the last close is attributed to this window:
  // after the first close in a batch the deltas are zero, so a burst of
  // boundary crossings between two distant events yields one active window
  // followed by empty ones -- exactly the shape of the simulated run.
  prev_counters_.resize(registry_->counter_count(), 0);
  w.counters.resize(registry_->counter_count());
  for (MetricId i = 0; i < w.counters.size(); ++i) {
    const std::uint64_t cur = registry_->counter_value(i);
    w.counters[i] = cur - prev_counters_[i];
    prev_counters_[i] = cur;
  }

  w.gauges.resize(registry_->gauge_count());
  for (MetricId i = 0; i < w.gauges.size(); ++i) {
    w.gauges[i] = registry_->gauge_value(i);
  }

  prev_hists_.resize(registry_->histogram_count());
  w.hists.resize(registry_->histogram_count());
  for (MetricId i = 0; i < w.hists.size(); ++i) {
    const Histogram& h = registry_->histogram_at(i);
    PrevHist& prev = prev_hists_[i];
    prev.buckets.resize(h.bucket_count(), 0);
    HistWindow& hw = w.hists[i];
    hw.count = h.count() - prev.count;
    hw.sum = h.sum() - prev.sum;
    hw.buckets.resize(h.bucket_count());
    for (std::size_t b = 0; b < h.bucket_count(); ++b) {
      hw.buckets[b] = h.bucket(b) - prev.buckets[b];
      prev.buckets[b] = h.bucket(b);
    }
    prev.count = h.count();
    prev.sum = h.sum();
  }

  if (trace_sink_ != nullptr) {
    const double end_us = static_cast<double>(w.index + 1) * cfg_.window_ms *
                          1000.0;
    for (MetricId i = 0; i < w.counters.size(); ++i) {
      if (w.counters[i] == 0 || excluded(counter_names_[i])) continue;
      trace_sink_->counter(counter_names_[i], end_us,
                           static_cast<double>(w.counters[i]), trace_track_);
    }
  }

  ring_.push_back(std::move(w));
  ++closed_;
  while (ring_.size() > cfg_.capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  first_index_ = ring_.empty() ? closed_ : ring_.front().index;
}

std::vector<std::uint64_t> Timeline::counter_series(
    std::string_view name) const {
  std::size_t id = counter_names_.size();
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) {
      id = i;
      break;
    }
  }
  std::vector<std::uint64_t> out(ring_.size(), 0);
  if (id == counter_names_.size()) return out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (id < ring_[i].counters.size()) out[i] = ring_[i].counters[id];
  }
  return out;
}

void Timeline::merge_from(const Timeline& other) {
  assert(cfg_.window_ms == other.cfg_.window_ms);
  if (other.ring_.empty()) return;

  // Adopt / extend name tables.  Shard registries perform identical
  // registrations in identical order, so where tables overlap the names must
  // agree -- anything else is a cross-shard registration divergence.
  for (std::size_t i = 0; i < other.counter_names_.size(); ++i) {
    if (i < counter_names_.size()) {
      assert(counter_names_[i] == other.counter_names_[i]);
    } else {
      counter_names_.push_back(other.counter_names_[i]);
    }
  }
  for (std::size_t i = 0; i < other.gauge_names_.size(); ++i) {
    if (i < gauge_names_.size()) {
      assert(gauge_names_[i] == other.gauge_names_[i]);
    } else {
      gauge_names_.push_back(other.gauge_names_[i]);
    }
  }
  for (std::size_t i = 0; i < other.hist_names_.size(); ++i) {
    if (i < hist_names_.size()) {
      assert(hist_names_[i] == other.hist_names_[i]);
      assert(hist_bounds_[i] == other.hist_bounds_[i]);
    } else {
      hist_names_.push_back(other.hist_names_[i]);
      hist_bounds_.push_back(other.hist_bounds_[i]);
    }
  }

  // Pad this ring so it covers the union of both index ranges (gap windows
  // are all-zero), then fold other's windows in element-wise.
  const std::uint64_t lo =
      ring_.empty() ? other.first_index_
                    : std::min(first_index_, other.first_index_);
  const std::uint64_t hi_excl =
      ring_.empty() ? other.first_index_ + other.ring_.size()
                    : std::max(first_index_ + ring_.size(),
                               other.first_index_ + other.ring_.size());
  if (ring_.empty()) {
    for (std::uint64_t i = lo; i < hi_excl; ++i) {
      ring_.push_back(Window{i, {}, {}, {}});
    }
  } else {
    for (std::uint64_t i = first_index_; i-- > lo;) {
      ring_.push_front(Window{i, {}, {}, {}});
    }
    for (std::uint64_t i = first_index_ + ring_.size(); i < hi_excl; ++i) {
      ring_.push_back(Window{i, {}, {}, {}});
    }
  }
  first_index_ = lo;
  closed_ = std::max(closed_, other.closed_);
  dropped_ = std::max(dropped_, other.dropped_);

  for (const Window& ow : other.ring_) {
    Window& w = ring_[ow.index - first_index_];
    if (w.counters.size() < ow.counters.size()) {
      w.counters.resize(ow.counters.size(), 0);
    }
    for (std::size_t i = 0; i < ow.counters.size(); ++i) {
      w.counters[i] += ow.counters[i];
    }
    if (w.gauges.size() < ow.gauges.size()) w.gauges.resize(ow.gauges.size());
    for (std::size_t i = 0; i < ow.gauges.size(); ++i) {
      w.gauges[i] = std::max(w.gauges[i], ow.gauges[i]);
    }
    if (w.hists.size() < ow.hists.size()) w.hists.resize(ow.hists.size());
    for (std::size_t i = 0; i < ow.hists.size(); ++i) {
      HistWindow& hw = w.hists[i];
      const HistWindow& ohw = ow.hists[i];
      hw.count += ohw.count;
      hw.sum += ohw.sum;
      if (hw.buckets.size() < ohw.buckets.size()) {
        hw.buckets.resize(ohw.buckets.size(), 0);
      }
      for (std::size_t b = 0; b < ohw.buckets.size(); ++b) {
        hw.buckets[b] += ohw.buckets[b];
      }
    }
  }

  while (ring_.size() > cfg_.capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  first_index_ = ring_.empty() ? closed_ : ring_.front().index;
}

std::string Timeline::to_jsonl() const {
  std::ostringstream os;
  for (const Window& w : ring_) {
    os << "{\"window\": " << w.index << ", \"t_ms\": "
       << static_cast<double>(w.index + 1) * cfg_.window_ms
       << ", \"counters\": {";
    bool first = true;
    for (std::size_t i = 0; i < w.counters.size(); ++i) {
      if (w.counters[i] == 0 || excluded(counter_names_[i])) continue;
      os << (first ? "" : ", ") << "\"";
      json_escape_into(os, counter_names_[i]);
      os << "\": " << w.counters[i];
      first = false;
    }
    os << "}, \"gauges\": {";
    first = true;
    for (std::size_t i = 0; i < w.gauges.size(); ++i) {
      if (w.gauges[i] == 0.0 || excluded(gauge_names_[i])) continue;
      os << (first ? "" : ", ") << "\"";
      json_escape_into(os, gauge_names_[i]);
      os << "\": " << w.gauges[i];
      first = false;
    }
    os << "}, \"histograms\": {";
    first = true;
    for (std::size_t i = 0; i < w.hists.size(); ++i) {
      const HistWindow& hw = w.hists[i];
      if (hw.count == 0 || excluded(hist_names_[i])) continue;
      os << (first ? "" : ", ") << "\"";
      json_escape_into(os, hist_names_[i]);
      os << "\": {\"count\": " << hw.count << ", \"sum\": " << hw.sum
         << ", \"p50\": "
         << window_percentile(hist_bounds_[i], hw.buckets, hw.count, 0.5)
         << ", \"p90\": "
         << window_percentile(hist_bounds_[i], hw.buckets, hw.count, 0.9)
         << ", \"p99\": "
         << window_percentile(hist_bounds_[i], hw.buckets, hw.count, 0.99)
         << "}";
      first = false;
    }
    os << "}}\n";
  }
  return os.str();
}

std::string Timeline::series_json(const std::vector<std::string>& counters,
                                  int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << "{\n";
  os << pad << "  \"window_ms\": " << cfg_.window_ms << ",\n";
  os << pad << "  \"first_window\": " << first_index_ << ",\n";
  os << pad << "  \"windows\": " << ring_.size();
  for (const std::string& name : counters) {
    const auto series = counter_series(name);
    os << ",\n" << pad << "  \"";
    json_escape_into(os, name);
    os << "\": [";
    for (std::size_t i = 0; i < series.size(); ++i) {
      os << (i == 0 ? "" : ", ") << series[i];
    }
    os << "]";
  }
  os << "\n" << pad << "}";
  return os.str();
}

void Timeline::set_trace_sink(Tracer* tracer, std::uint32_t track) {
  trace_sink_ = tracer;
  trace_track_ = track;
}

}  // namespace rofl::obs
