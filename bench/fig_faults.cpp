// fig_faults -- ring convergence under an unreliable network.
//
// The paper's evaluation assumes reliable control-plane delivery; section 2.3
// only sketches what loss recovery must do ("Recovering").  This bench
// quantifies it: a churn workload runs under a FaultPlan sweeping message
// loss from 0 to 10% (plus duplication, jitter and scheduled link flaps) and
// reports what the retry/timeout/backoff machinery paid to converge -- extra
// control packets per successful join, retries, exhausted exchanges, and
// mid-churn delivery -- then verifies that once the faults stop a single
// repair pass restores canonical rings.
//
// Output: a console table plus BENCH_faults.json (override the path with
// ROFL_FAULTS_JSON; empty string suppresses emission) with one entry per
// loss level and the full obs::Registry snapshot of the reference run, so
// scripts/check.sh can diff two same-seed runs for bit-identical fault
// accounting.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "obs/timeline.hpp"
#include "rofl/network.hpp"
#include "sim/faults.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

struct FaultSweepResult {
  double loss = 0.0;
  std::uint64_t joins_ok = 0;
  std::uint64_t joins_failed = 0;
  double msgs_per_join = 0.0;
  std::uint64_t dropped = 0;
  std::uint64_t retries = 0;
  std::uint64_t retries_exhausted = 0;
  std::uint64_t flaps = 0;
  double delivery = 0.0;       // mid-churn data-plane success rate
  double repair_msgs = 0.0;    // faults-off repair pass cost
  bool converged = false;      // strict ring verification after repair
  std::uint64_t events_dispatched = 0;
  double wall_seconds = 0.0;   // host wall time of this level's run
  std::string metrics_json;    // full registry snapshot (determinism gate)
  /// Per-window delta series over the faulty phase (convergence curves).
  double timeline_window_ms = 0.0;
  std::vector<std::pair<std::string, std::vector<std::uint64_t>>> series;
};

FaultSweepResult run_level(double loss, std::uint64_t seed) {
  const auto t0 = std::chrono::steady_clock::now();
  FaultSweepResult res;
  res.loss = loss;

  Rng trng(seed);
  graph::IspParams params;
  params.router_count = 48;
  params.pop_count = 6;
  graph::IspTopology topo = graph::make_isp_topology(params, trng);
  intra::Network net(&topo, intra::Config{}, seed + 1);

  // The fault plan scales with the swept loss rate; flaps hit real edges.
  sim::FaultPlan plan;
  plan.defaults.loss = loss;
  plan.defaults.duplicate = loss / 2.0;
  plan.defaults.jitter_ms = 0.3;
  std::vector<std::pair<graph::NodeIndex, graph::NodeIndex>> edges;
  for (graph::NodeIndex u = 0; u < topo.graph.node_count(); ++u) {
    for (const auto& e : topo.graph.neighbors(u)) {
      if (e.to > u) edges.emplace_back(u, e.to);
    }
  }
  Rng frng(seed * 5 + 1);
  for (int i = 0; i < 3; ++i) {
    const auto [u, v] = edges[frng.index(edges.size())];
    const double down = 10.0 + 15.0 * i;
    plan.link_flaps.push_back({u, v, down, down + 12.0});
  }
  sim::FaultInjector inj(plan, seed ^ 0xF417C0DEull,
                         &net.simulator().metrics());
  net.set_fault_injector(&inj);
  net.schedule_fault_plan(plan);

  // Windowed telemetry over the faulty phase (SPF wall-clock histograms
  // excluded, same rule as the metrics snapshot below).
  obs::Timeline timeline(&net.simulator().metrics(),
                         obs::Timeline::Config{10.0, 4096, {"recompute_ms"}});
  net.simulator().set_timeline(&timeline);

  const std::size_t hosts = bench::full_scale() ? 600 : 150;
  const int churn_ops = bench::full_scale() ? 200 : 60;

  // Phase 1: joins under loss.
  std::uint64_t join_msgs = 0;
  std::vector<Identity> live;
  Rng wrng(seed * 9 + 7);
  double t = 0.0;
  for (std::size_t i = 0; i < hosts; ++i) {
    t += 0.5;
    net.simulator().run_until(t);  // interleave so the flap windows fire
    Identity ident = Identity::generate(net.rng());
    const auto gw =
        static_cast<graph::NodeIndex>(wrng.index(net.router_count()));
    const auto js = net.join_host(ident, gw);
    if (js.ok) {
      ++res.joins_ok;
      join_msgs += js.messages;
      live.push_back(ident);
    } else {
      ++res.joins_failed;
    }
  }
  res.msgs_per_join = res.joins_ok == 0
                          ? 0.0
                          : static_cast<double>(join_msgs) /
                                static_cast<double>(res.joins_ok);

  // Phase 2: churn + traffic under loss.
  std::size_t attempted = 0, delivered = 0;
  for (int op = 0; op < churn_ops; ++op) {
    t += 1.0;
    net.simulator().run_until(t);
    const std::uint64_t pick = wrng.below(100);
    if (pick < 30 && !live.empty()) {
      const std::size_t v = wrng.index(live.size());
      (void)net.fail_host(live[v].id());
      live.erase(live.begin() + static_cast<long>(v));
    } else if (pick < 55) {
      Identity ident = Identity::generate(net.rng());
      if (net.join_host(ident, static_cast<graph::NodeIndex>(
                                   wrng.index(net.router_count())))
              .ok) {
        live.push_back(ident);
      }
    } else if (!live.empty()) {
      const auto src =
          static_cast<graph::NodeIndex>(wrng.index(net.router_count()));
      ++attempted;
      if (net.route(src, live[wrng.index(live.size())].id()).delivered) {
        ++delivered;
      }
    }
  }
  net.simulator().run_until(t + 100.0);  // all flap windows closed
  res.delivery = attempted == 0 ? 1.0
                                : static_cast<double>(delivered) /
                                      static_cast<double>(attempted);

  res.dropped = inj.dropped();
  res.retries = inj.retries();
  res.retries_exhausted = inj.retries_exhausted();
  res.flaps = inj.flaps();
  res.metrics_json = net.simulator().metrics().to_json(2);

  // Snapshot the series before the faults-off repair, like the metrics.
  timeline.flush(net.simulator().now_ms());
  net.simulator().set_timeline(nullptr);
  res.timeline_window_ms = timeline.window_ms();
  for (const char* name : {"faults.dropped", "faults.retries", "msgs.join",
                           "msgs.repair", "msgs.data"}) {
    res.series.emplace_back(name, timeline.counter_series(name));
  }

  // Faults off: one repair pass must restore canonical rings.
  net.set_fault_injector(nullptr);
  const auto rs = net.repair_partitions();
  res.repair_msgs = static_cast<double>(rs.messages);
  std::string err;
  res.converged = net.verify_rings(&err, /*strict=*/true);
  if (!res.converged) {
    std::cerr << "loss=" << loss << ": rings NOT canonical after repair: "
              << err << "\n";
  }
  res.events_dispatched = net.simulator().events_dispatched();
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

void write_json(const std::vector<FaultSweepResult>& sweep,
                const FaultSweepResult& reference) {
  std::string path = "BENCH_faults.json";
  if (const char* env = std::getenv("ROFL_FAULTS_JSON")) path = env;
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "fig_faults: cannot open " << path << "\n";
    return;
  }
  out << "{\n  \"schema\": \"rofl-bench-faults-v1\",\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& r = sweep[i];
    out << "    {\"loss\": " << r.loss << ", \"joins_ok\": " << r.joins_ok
        << ", \"joins_failed\": " << r.joins_failed
        << ", \"msgs_per_join\": " << r.msgs_per_join
        << ", \"dropped\": " << r.dropped << ", \"retries\": " << r.retries
        << ", \"retries_exhausted\": " << r.retries_exhausted
        << ", \"flaps\": " << r.flaps << ", \"delivery\": " << r.delivery
        << ", \"repair_msgs\": " << r.repair_msgs
        << ", \"converged\": " << (r.converged ? "true" : "false")
        << ", \"events_dispatched\": " << r.events_dispatched
        << ", \"events_per_sec\": "
        << (r.wall_seconds > 0.0
                ? static_cast<double>(r.events_dispatched) / r.wall_seconds
                : 0.0)
        << "}" << (i + 1 < sweep.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"run\": " << bench::run_info_json([&] {
    double total = 0.0;
    for (const auto& r : sweep) total += r.wall_seconds;
    return total;
  }());
  // Reference level's per-window deltas: what convergence cost over time.
  out << ",\n  \"series\": {\n    \"window_ms\": "
      << reference.timeline_window_ms;
  for (const auto& [name, values] : reference.series) {
    out << ",\n    \"" << name << "\": [";
    for (std::size_t i = 0; i < values.size(); ++i) {
      out << (i == 0 ? "" : ", ") << values[i];
    }
    out << "]";
  }
  out << "\n  }";
  out << ",\n  \"metrics\": " << reference.metrics_json << "\n}\n";
  std::cout << "JSON written to " << path << "\n";
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  print_banner(std::cout,
               "Ring convergence under loss/duplication/jitter + link flaps");

  const std::vector<double> losses = {0.0, 0.01, 0.02, 0.05, 0.10};
  std::vector<FaultSweepResult> sweep;
  Table t({"loss", "joins ok", "joins failed", "msgs/join", "dropped",
           "retries", "exhausted", "delivery", "repair msgs", "converged"});
  for (const double loss : losses) {
    sweep.push_back(run_level(loss, bench::kSeed));
    const auto& r = sweep.back();
    t.add_row({r.loss, static_cast<std::int64_t>(r.joins_ok),
               static_cast<std::int64_t>(r.joins_failed), r.msgs_per_join,
               static_cast<std::int64_t>(r.dropped),
               static_cast<std::int64_t>(r.retries),
               static_cast<std::int64_t>(r.retries_exhausted), r.delivery,
               r.repair_msgs, std::string(r.converged ? "yes" : "NO")});
  }
  t.print(std::cout);

  std::cout
      << "\nLoss makes joins pay for retransmissions (msgs/join grows with "
         "the loss rate) and the timeout latency of each discovered drop; "
         "exhausted exchanges surface as failed joins rather than corrupt "
         "rings.  Once the network behaves, a single repair pass returns "
         "every level to canonical successor/predecessor state.\n";

  // Determinism spot-check: a second run of the reference level must
  // reproduce the fault accounting bit-for-bit.
  const FaultSweepResult again = run_level(0.05, bench::kSeed);
  const auto& ref = sweep[3];
  const bool identical = again.dropped == ref.dropped &&
                         again.retries == ref.retries &&
                         again.joins_ok == ref.joins_ok &&
                         again.flaps == ref.flaps;
  std::cout << "same-seed reproduction at loss=0.05: "
            << (identical ? "bit-identical fault accounting" : "MISMATCH")
            << "\n";

  write_json(sweep, sweep[3]);
  return identical ? 0 : 1;
}
