#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>

namespace rofl::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  std::vector<double> b;
  b.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    b.push_back(v);
    v *= factor;
  }
  return b;
}

std::vector<double> Histogram::linear_bounds(double start, double step,
                                             std::size_t count) {
  std::vector<double> b;
  b.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    b.push_back(start + step * static_cast<double>(i));
  }
  return b;
}

void Histogram::record(double v) {
  // First bound >= v: upper-inclusive buckets.  lower_bound keeps a value
  // sitting exactly on bound[i] inside bucket i, not i+1.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  ++counts_[idx];  // bounds_.size() == overflow
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::cdf_at(double x) const {
  if (count_ == 0) return 0.0;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (bounds_[i] > x) break;
    cum += counts_[i];
  }
  if (x >= max_) return 1.0;
  return static_cast<double>(cum) / static_cast<double>(count_);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank, mirroring util::SampleSet::percentile: the sample at
  // ceil(p * n) in sorted order (1-based), i.e. the smallest value whose
  // cumulative count reaches the rank.
  const auto rank = static_cast<std::uint64_t>(std::max<double>(
      1.0, std::ceil(p * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cum + counts_[i] < rank) {
      cum += counts_[i];
      continue;
    }
    // Rank falls in bucket i.  Interpolate linearly across the bucket's
    // span, then clamp to the observed range so sparse edge buckets (and
    // the unbounded overflow bucket) never report values outside the data.
    const double lo = i == 0 ? min_ : bounds_[i - 1];
    const double hi = i < bounds_.size() ? bounds_[i] : max_;
    const double frac = counts_[i] == 0
                            ? 1.0
                            : static_cast<double>(rank - cum) /
                                  static_cast<double>(counts_[i]);
    return std::clamp(lo + (hi - lo) * frac, min_, max_);
  }
  return max_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

bool Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) return false;
  if (other.count_ == 0) return true;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return true;
}

namespace {

template <typename Cells>
MetricId find_or_append(Cells& cells, std::string_view name) {
  for (MetricId i = 0; i < cells.size(); ++i) {
    if (cells[i].name == name) return i;
  }
  cells.push_back({std::string(name), {}});
  return static_cast<MetricId>(cells.size() - 1);
}

void json_escape_into(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

MetricId Registry::counter(std::string_view name) {
  return find_or_append(counters_, name);
}

MetricId Registry::gauge(std::string_view name) {
  return find_or_append(gauges_, name);
}

MetricId Registry::histogram(std::string_view name,
                             std::vector<double> bounds) {
  for (MetricId i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name == name) return i;
  }
  histograms_.push_back(HistCell{std::string(name), Histogram(std::move(bounds))});
  return static_cast<MetricId>(histograms_.size() - 1);
}

std::string Registry::to_json(int indent, bool with_buckets) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << "{\n";
  os << pad << "  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << pad << "    \"";
    json_escape_into(os, counters_[i].name);
    os << "\": " << counters_[i].value;
  }
  os << (counters_.empty() ? "" : "\n" + pad + "  ") << "},\n";
  os << pad << "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << pad << "    \"";
    json_escape_into(os, gauges_[i].name);
    os << "\": " << gauges_[i].value;
  }
  os << (gauges_.empty() ? "" : "\n" + pad + "  ") << "},\n";
  os << pad << "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const Histogram& h = histograms_[i].hist;
    os << (i == 0 ? "\n" : ",\n") << pad << "    \"";
    json_escape_into(os, histograms_[i].name);
    os << "\": {\"count\": " << h.count() << ", \"sum\": " << h.sum()
       << ", \"min\": " << h.min() << ", \"max\": " << h.max()
       << ", \"p50\": " << h.percentile(0.5)
       << ", \"p90\": " << h.percentile(0.9)
       << ", \"p99\": " << h.percentile(0.99);
    if (with_buckets) {
      os << ", \"bounds\": [";
      for (std::size_t b = 0; b < h.bounds().size(); ++b) {
        os << (b == 0 ? "" : ", ") << h.bounds()[b];
      }
      // One more bucket than bounds: the trailing entry is the overflow.
      os << "], \"buckets\": [";
      for (std::size_t b = 0; b < h.bucket_count(); ++b) {
        os << (b == 0 ? "" : ", ") << h.bucket(b);
      }
      os << "]";
    }
    os << "}";
  }
  os << (histograms_.empty() ? "" : "\n" + pad + "  ") << "}\n";
  os << pad << "}";
  return os.str();
}

void Registry::print_table(std::ostream& os) const {
  for (const CounterCell& c : counters_) {
    os << c.name << " = " << c.value << "\n";
  }
  for (const GaugeCell& g : gauges_) {
    os << g.name << " = " << g.value << "\n";
  }
  for (const HistCell& h : histograms_) {
    os << h.name << ": n=" << h.hist.count() << " mean=" << h.hist.mean()
       << " p50=" << h.hist.percentile(0.5)
       << " p99=" << h.hist.percentile(0.99) << " max=" << h.hist.max()
       << "\n";
  }
}

void Registry::reset() {
  for (CounterCell& c : counters_) c.value = 0;
  for (GaugeCell& g : gauges_) g.value = 0.0;
  for (HistCell& h : histograms_) h.hist.reset();
}

void Registry::merge_from(const Registry& other) {
  for (const CounterCell& c : other.counters_) {
    counters_[counter(c.name)].value += c.value;
  }
  for (const GaugeCell& g : other.gauges_) {
    const MetricId id = gauge(g.name);
    gauges_[id].value = std::max(gauges_[id].value, g.value);
  }
  for (const HistCell& h : other.histograms_) {
    const MetricId id = histogram(h.name, h.hist.bounds());
    // A name collision with different bounds is a registration bug between
    // the two registries; the merge skips it rather than corrupting buckets.
    const bool ok = histograms_[id].hist.merge_from(h.hist);
    assert(ok && "histogram bounds mismatch across registries");
    (void)ok;
  }
}

}  // namespace rofl::obs
