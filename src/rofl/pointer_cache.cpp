#include "rofl/pointer_cache.hpp"

#include <algorithm>

#include "util/branchless_search.hpp"

namespace rofl::intra {

std::size_t PointerCache::index_lower_bound(const NodeId& id) const {
  return util::lower_bound_index(
      index_.data(), index_.size(), id,
      [](const IndexEntry& e, const NodeId& key) { return e.id < key; });
}

std::size_t PointerCache::index_find(const NodeId& id) const {
  const std::size_t pos = index_lower_bound(id);
  if (pos < index_.size() && index_[pos].id == id) return pos;
  return index_.size();
}

void PointerCache::lru_unlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.lru_prev != kNil) {
    slots_[s.lru_prev].lru_next = s.lru_next;
  } else {
    lru_head_ = s.lru_next;
  }
  if (s.lru_next != kNil) {
    slots_[s.lru_next].lru_prev = s.lru_prev;
  } else {
    lru_tail_ = s.lru_prev;
  }
  s.lru_prev = kNil;
  s.lru_next = kNil;
}

void PointerCache::lru_push_front(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.lru_prev = kNil;
  s.lru_next = lru_head_;
  if (lru_head_ != kNil) slots_[lru_head_].lru_prev = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNil) lru_tail_ = slot;
}

void PointerCache::touch(std::uint32_t slot) {
  if (lru_head_ == slot) return;
  lru_unlink(slot);
  lru_push_front(slot);
}

void PointerCache::insert(const NodeId& id, NodeIndex host, SourceRoute path) {
  if (capacity_ == 0) return;
  const std::size_t pos = index_lower_bound(id);
  if (pos < index_.size() && index_[pos].id == id) {
    // Refresh in place.
    const std::uint32_t slot = index_[pos].slot;
    slots_[slot].entry.host = host;
    slots_[slot].entry.path = std::move(path);
    touch(slot);
    return;
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].entry = CacheEntry{id, host, std::move(path)};
  index_.insert(index_.begin() + static_cast<std::ptrdiff_t>(pos),
                IndexEntry{id, slot});
  lru_push_front(slot);
  if (index_.size() > capacity_) evict_lru();
}

const CacheEntry* PointerCache::best_match(const NodeId& dest) {
  if (index_.empty()) {
    ++misses_;
    return nullptr;
  }
  // Largest key <= dest in ring order == minimal clockwise distance to dest.
  std::size_t pos = index_lower_bound(dest);
  if (pos < index_.size() && index_[pos].id == dest) {
    // exact hit: dest itself
  } else if (pos == 0) {
    pos = index_.size() - 1;  // wrap to the numerically largest entry
  } else {
    --pos;
  }
  ++hits_;
  const std::uint32_t slot = index_[pos].slot;
  touch(slot);
  return &slots_[slot].entry;
}

const CacheEntry* PointerCache::find(const NodeId& id) const {
  const std::size_t pos = index_find(id);
  if (pos == index_.size()) return nullptr;
  return &slots_[index_[pos].slot].entry;
}

void PointerCache::erase_at(std::size_t index_pos) {
  const std::uint32_t slot = index_[index_pos].slot;
  lru_unlink(slot);
  slots_[slot].entry = CacheEntry{};  // release the path's heap buffer
  free_slots_.push_back(slot);
  index_.erase(index_.begin() + static_cast<std::ptrdiff_t>(index_pos));
}

void PointerCache::erase(const NodeId& id) {
  const std::size_t pos = index_find(id);
  if (pos == index_.size()) return;
  erase_at(pos);
  ++stale_drops_;  // staleness removal, never an LRU eviction
}

void PointerCache::evict_lru() {
  if (lru_tail_ == kNil) return;
  const std::uint32_t victim = lru_tail_;
  const std::size_t pos = index_find(slots_[victim].entry.id);
  erase_at(pos);
  ++evictions_;
}

void PointerCache::invalidate_through_router(NodeIndex router) {
  std::vector<NodeId> dead;
  for (const IndexEntry& ie : index_) {
    const SourceRoute& p = slots_[ie.slot].entry.path;
    if (std::find(p.begin(), p.end(), router) != p.end()) {
      dead.push_back(ie.id);
    }
  }
  for (const NodeId& id : dead) erase(id);
}

void PointerCache::invalidate_through_link(NodeIndex u, NodeIndex v) {
  std::vector<NodeId> dead;
  for (const IndexEntry& ie : index_) {
    const SourceRoute& p = slots_[ie.slot].entry.path;
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      if ((p[i] == u && p[i + 1] == v) || (p[i] == v && p[i + 1] == u)) {
        dead.push_back(ie.id);
        break;
      }
    }
  }
  for (const NodeId& id : dead) erase(id);
}

void PointerCache::clear() {
  stale_drops_ += index_.size();
  slots_.clear();
  free_slots_.clear();
  index_.clear();
  lru_head_ = kNil;
  lru_tail_ = kNil;
}

void PointerCache::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (index_.size() > capacity_) evict_lru();
}

bool PointerCache::invariants_ok() const {
  // Index sorted strictly ascending, slots in range, ids match slab.
  for (std::size_t i = 0; i < index_.size(); ++i) {
    if (i > 0 && !(index_[i - 1].id < index_[i].id)) return false;
    if (index_[i].slot >= slots_.size()) return false;
    if (slots_[index_[i].slot].entry.id != index_[i].id) return false;
  }
  // LRU chain: consistent back-links, visits exactly the indexed slots.
  std::vector<bool> indexed(slots_.size(), false);
  for (const IndexEntry& ie : index_) indexed[ie.slot] = true;
  std::size_t walked = 0;
  std::uint32_t prev = kNil;
  for (std::uint32_t cur = lru_head_; cur != kNil;
       cur = slots_[cur].lru_next) {
    if (cur >= slots_.size() || !indexed[cur]) return false;
    if (slots_[cur].lru_prev != prev) return false;
    prev = cur;
    if (++walked > index_.size()) return false;  // cycle
  }
  if (walked != index_.size()) return false;
  if (lru_tail_ != prev) return false;
  // Free slots disjoint from indexed slots; everything accounted for.
  std::size_t free_count = 0;
  for (const std::uint32_t s : free_slots_) {
    if (s >= slots_.size() || indexed[s]) return false;
    ++free_count;
  }
  return index_.size() + free_count == slots_.size();
}

}  // namespace rofl::intra
