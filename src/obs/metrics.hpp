// metrics.hpp -- named counters, gauges, and fixed-bucket histograms.
//
// The paper's entire evaluation is observation: join overhead in packets,
// stretch per route, convergence traffic after a partition (figures 5-8).
// Instead of every bench re-deriving its own ad-hoc measurements, the
// protocol layers record into one Registry and the harness exports it.
//
// Hot-path contract: callers register a metric once (string lookup) and keep
// the returned MetricId; recording is then a single indexed add on a
// contiguous vector -- no hashing, no locks, no allocation.  A Registry is
// owned by one simulation (one thread), matching the rest of the codebase;
// it is not internally synchronized.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace rofl::obs {

/// Index into one of the registry's per-kind tables.  Ids are dense, stable
/// for the registry's lifetime, and identical across two registries that
/// performed the same registrations in the same order (so seeded runs agree).
using MetricId = std::uint32_t;

/// Fixed-bucket histogram.  Bucket i counts samples v with
/// bound[i-1] < v <= bound[i] (upper-inclusive); samples above the last
/// bound land in the overflow bucket.  Upper-inclusive boundaries make the
/// cumulative count through bucket i exactly |{v : v <= bound[i]}|, i.e. the
/// histogram CDF agrees with util::SampleSet::cdf_at at every boundary.
class Histogram {
 public:
  /// `bounds` must be strictly ascending and non-empty.
  explicit Histogram(std::vector<double> bounds);

  /// `count` buckets spanning [start, start * factor^(count-1)].
  [[nodiscard]] static std::vector<double> exponential_bounds(double start,
                                                              double factor,
                                                              std::size_t count);
  [[nodiscard]] static std::vector<double> linear_bounds(double start,
                                                         double step,
                                                         std::size_t count);

  void record(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Number of buckets including the overflow bucket.
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  /// Upper bound of bucket i; the overflow bucket has no finite bound.
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// Fraction of samples <= x (x at or above the last bound counts all).
  [[nodiscard]] double cdf_at(double x) const;

  /// p in [0,1]; nearest-rank over buckets, linearly interpolated inside the
  /// bucket holding the rank.  Clamped to the observed [min, max], so a rank
  /// landing in the overflow bucket reports the true maximum rather than a
  /// fictitious bound.
  [[nodiscard]] double percentile(double p) const;

  void reset();

  /// Adds another histogram's contents bucket-by-bucket, overflow included.
  /// Returns false -- and leaves this histogram untouched -- when the bucket
  /// bounds differ (two histograms with different layouts have no meaningful
  /// sum).  Exact (order-independent) when every recorded sample is an
  /// integral value below 2^53.
  [[nodiscard]] bool merge_from(const Histogram& other);

 private:
  std::vector<double> bounds_;     // ascending upper bounds
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// The registry: three per-kind tables addressed by MetricId.  Registration
/// is get-or-create by name; recording is by id.
class Registry {
 public:
  // -- registration (cold; one string scan) ---------------------------------
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  /// Re-registering an existing histogram name returns the existing id; the
  /// bounds of the first registration win.
  MetricId histogram(std::string_view name, std::vector<double> bounds);

  // -- recording (hot; one indexed op) --------------------------------------
  void add(MetricId id, std::uint64_t n = 1) { counters_[id].value += n; }
  void set_counter(MetricId id, std::uint64_t v) { counters_[id].value = v; }
  void set(MetricId id, double v) { gauges_[id].value = v; }
  void observe(MetricId id, double v) { histograms_[id].hist.record(v); }

  // -- reads ----------------------------------------------------------------
  [[nodiscard]] std::uint64_t counter_value(MetricId id) const {
    return counters_[id].value;
  }
  [[nodiscard]] double gauge_value(MetricId id) const {
    return gauges_[id].value;
  }
  [[nodiscard]] const Histogram& histogram_at(MetricId id) const {
    return histograms_[id].hist;
  }

  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }
  [[nodiscard]] std::size_t gauge_count() const { return gauges_.size(); }
  [[nodiscard]] std::size_t histogram_count() const {
    return histograms_.size();
  }
  [[nodiscard]] const std::string& counter_name(MetricId id) const {
    return counters_[id].name;
  }
  [[nodiscard]] const std::string& gauge_name(MetricId id) const {
    return gauges_[id].name;
  }
  [[nodiscard]] const std::string& histogram_name(MetricId id) const {
    return histograms_[id].name;
  }

  // -- export ---------------------------------------------------------------
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, p50, p90, p99}}}.
  /// `indent` spaces prefix every emitted line (for embedding).  With
  /// `with_buckets`, every histogram also carries its full distribution as
  /// parallel "bounds" / "buckets" arrays (buckets has one extra trailing
  /// entry: the overflow count), so external tooling can reconstruct CDFs
  /// instead of settling for three percentiles.
  [[nodiscard]] std::string to_json(int indent = 0,
                                    bool with_buckets = false) const;

  /// Folds another registry into this one by metric name: counters add,
  /// gauges take the max (a sum would double-count point-in-time readings),
  /// histograms add bucket-by-bucket (bounds must match where names collide).
  /// Metrics only present in `other` are registered here.
  ///
  /// This is how the sharded simulator produces its merged snapshot.  The
  /// result is independent of merge order for counters and for histograms
  /// whose samples are exactly representable (integral values) -- the
  /// discipline sharded workloads must follow for bit-identical snapshots
  /// across shard counts (DESIGN.md section 13).
  void merge_from(const Registry& other);
  /// Human-readable table of every metric.
  void print_table(std::ostream& os) const;

  /// Zeroes every counter, gauge, and histogram; names and ids survive.
  void reset();

 private:
  struct CounterCell {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeCell {
    std::string name;
    double value = 0.0;
  };
  struct HistCell {
    std::string name;
    Histogram hist;
  };

  std::vector<CounterCell> counters_;
  std::vector<GaugeCell> gauges_;
  std::vector<HistCell> histograms_;
};

}  // namespace rofl::obs
