#include "audit/shard_audit.hpp"

#include <iomanip>
#include <sstream>

namespace rofl::audit {

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::string ShardAuditReport::to_string() const {
  std::ostringstream os;
  os << "shard-audit: checks=" << checks << " violations=" << violations.size()
     << (clean() ? " CLEAN" : "") << "\n";
  for (const std::string& v : violations) os << "  HARD " << v << "\n";
  return os.str();
}

std::string ShardAuditReport::digest() const {
  std::uint64_t h = 0xCBF29CE484222325ull;
  h = fnv1a(h, "checks=" + std::to_string(checks));
  for (const std::string& v : violations) h = fnv1a(h, ";" + v);
  std::ostringstream os;
  os << "checks=" << checks << ";hard=" << violations.size() << ";fnv="
     << std::hex << std::setfill('0') << std::setw(16) << h;
  return os.str();
}

ShardAuditReport audit_scale_run(const inter::ShardScaleModel& model) {
  ShardAuditReport rep;
  const sim::ShardedSimulator& eng = model.engine();
  const auto add = [&rep](std::string check, std::string detail) {
    rep.violations.push_back(std::move(check) + ": " + std::move(detail));
  };

  // 1. Sequence conservation: an entity's final sequence number counts its
  //    sends; each must have been processed exactly once somewhere.
  const std::vector<std::uint64_t>& sent = eng.sent_by_entity();
  const std::vector<std::uint64_t> processed = eng.processed_by_source();
  for (std::size_t e = 0; e < sent.size(); ++e) {
    rep.checks++;
    if (sent[e] != processed[e]) {
      add("shard.seq.conservation",
          "entity " + std::to_string(e) + " sent " + std::to_string(sent[e]) +
              " processed " + std::to_string(processed[e]));
    }
  }
  rep.checks++;
  if (eng.seed_count() != eng.seeds_processed()) {
    add("shard.seed.conservation",
        "seeded " + std::to_string(eng.seed_count()) + " processed " +
            std::to_string(eng.seeds_processed()));
  }

  // 2. Conservative-synchronization health.
  const sim::ShardedSimulator::RunStats& stats = eng.stats();
  rep.checks++;
  if (!stats.monotone) {
    add("shard.clock.monotone", "a shard executed a timestamp regression");
  }
  rep.checks++;
  if (stats.min_cross_delay_ms < eng.lookahead_ms()) {
    add("shard.lookahead.bound",
        "cross-entity delay " + std::to_string(stats.min_cross_delay_ms) +
            "ms below lookahead " + std::to_string(eng.lookahead_ms()) + "ms");
  }

  // 3. Ring consistency against home-AS ground truth.  At quiescence every
  //    register/unregister cascade has fully propagated, so slot liveness
  //    must agree with every anchor on the home chain, and ring sizes must
  //    account for exactly the live slots registered through each anchor.
  const graph::AsTopology& topo = model.topology();
  const auto n = static_cast<graph::AsIndex>(topo.as_count());
  const std::uint32_t slots = model.params().slots_per_as;
  std::vector<std::uint64_t> expected_entries(n, 0);
  for (graph::AsIndex t = 0; t < n; ++t) {
    for (std::uint32_t s = 0; s < slots; ++s) {
      if (!model.slot_live(t, s)) continue;
      const NodeId id =
          inter::ShardScaleModel::id_for(model.params().seed, t, s);
      for (const graph::AsIndex anchor : model.chain(t)) {
        expected_entries[anchor]++;
        rep.checks++;
        const auto it = model.ring(anchor).find(id);
        if (it == model.ring(anchor).end()) {
          add("shard.ring.missing",
              "AS " + std::to_string(t) + " slot " + std::to_string(s) +
                  " live but absent at anchor " + std::to_string(anchor));
        } else if (it->second != t) {
          add("shard.ring.home",
              "anchor " + std::to_string(anchor) + " maps " + id.to_string() +
                  " to AS " + std::to_string(it->second) + " not " +
                  std::to_string(t));
        }
      }
    }
  }
  for (graph::AsIndex a = 0; a < n; ++a) {
    rep.checks++;
    if (model.ring(a).size() != expected_entries[a]) {
      add("shard.ring.extraneous",
          "anchor " + std::to_string(a) + " holds " +
              std::to_string(model.ring(a).size()) + " entries, expected " +
              std::to_string(expected_entries[a]));
    }
  }

  return rep;
}

}  // namespace rofl::audit
