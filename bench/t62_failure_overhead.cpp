// t62_failure_overhead -- regenerates the section 6.2 "Failure" paragraph:
//
//   "We found the overhead triggered by host failure and mobility to be
//    comparable to join overhead, and link/router failures that do not
//    trigger partitions to be comparable to OSPF recovery times."
//
// Plus a churn-dynamics run driven by the discrete-event engine: hosts
// arrive and die continuously; the bench reports control overhead per event
// and delivery success sampled during churn (the paper notes join cost is
// a one-time cost "in the absence of churn" -- this quantifies presence).
#include <iostream>

#include "bench_common.hpp"
#include "rofl/network.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rofl {
namespace {

struct OverheadResult {
  double join = 0.0;
  double mobility = 0.0;
  double host_failure = 0.0;
  double link_failure = 0.0;
  double ospf_flood = 0.0;
  double router_failure = 0.0;
};

OverheadResult measure(graph::RocketfuelAs which, std::size_t ids) {
  Rng trng(bench::kSeed);
  graph::IspTopology topo = graph::make_rocketfuel_like(which, trng);
  intra::Network net(&topo, intra::Config{}, bench::kSeed + 3);

  OverheadResult res;
  SampleSet join_cost;
  std::vector<Identity> hosts;
  for (std::size_t i = 0; i < ids; ++i) {
    Identity ident = Identity::generate(net.rng());
    const auto gw = static_cast<graph::NodeIndex>(
        net.rng().index(net.router_count()));
    const auto js = net.join_host(ident, gw);
    if (!js.ok) continue;
    join_cost.add(static_cast<double>(js.messages));
    hosts.push_back(ident);
  }
  res.join = join_cost.mean();

  // Mobility: graceful leave + rejoin elsewhere.
  SampleSet mob;
  for (int i = 0; i < 40; ++i) {
    const Identity ident = hosts[net.rng().index(hosts.size())];
    if (!net.hosting_router(ident.id()).has_value()) continue;
    const auto leave = net.leave_host(ident.id());
    const auto gw = static_cast<graph::NodeIndex>(
        net.rng().index(net.router_count()));
    const auto rejoin = net.join_host(ident, gw);
    if (rejoin.ok) {
      mob.add(static_cast<double>(leave.messages + rejoin.messages));
    }
  }
  res.mobility = mob.mean();

  // Host failure: teardown + directed flood.
  SampleSet hf;
  for (int i = 0; i < 40; ++i) {
    const Identity ident = hosts[net.rng().index(hosts.size())];
    if (!net.hosting_router(ident.id()).has_value()) continue;
    const auto rs = net.fail_host(ident.id());
    hf.add(static_cast<double>(rs.messages));
    (void)net.join_host(ident, static_cast<graph::NodeIndex>(
                                   net.rng().index(net.router_count())));
  }
  res.host_failure = hf.mean();

  // Link failure without partition: ROFL-side repair vs the OSPF flood that
  // any link-state network pays anyway.
  SampleSet lf, flood;
  for (graph::NodeIndex u = 0; u < net.router_count() && lf.count() < 15; ++u) {
    for (const auto& e : topo.graph.neighbors(u)) {
      if (u > e.to) continue;
      topo.graph.set_link_up(u, e.to, false);
      const bool still = topo.graph.connected();
      topo.graph.set_link_up(u, e.to, true);
      if (!still) continue;
      const auto before_ls =
          net.simulator().counters().get(sim::MsgCategory::kLinkState);
      const auto rs = net.fail_link(u, e.to);
      const auto lsa =
          net.simulator().counters().get(sim::MsgCategory::kLinkState) -
          before_ls;
      lf.add(static_cast<double>(rs.messages));
      flood.add(static_cast<double>(lsa));
      (void)net.restore_link(u, e.to);
      break;
    }
  }
  res.link_failure = lf.mean();
  res.ospf_flood = flood.mean();

  // Router failure (rehoming + ring repair).
  SampleSet rf;
  for (int i = 0; i < 6; ++i) {
    const auto r = static_cast<graph::NodeIndex>(
        net.rng().index(net.router_count()));
    if (!topo.graph.node_up(r)) continue;
    topo.graph.set_node_up(r, false);
    const bool still = topo.graph.connected();
    topo.graph.set_node_up(r, true);
    if (!still) continue;
    const auto rs = net.fail_router(r);
    rf.add(static_cast<double>(rs.messages));
    (void)net.restore_router(r);
  }
  res.router_failure = rf.mean();
  return res;
}

void churn_dynamics(std::ostream& os) {
  print_banner(os, "Churn dynamics (event-driven; AS3967-like)");
  Rng trng(bench::kSeed);
  const graph::IspTopology topo =
      graph::make_rocketfuel_like(graph::RocketfuelAs::kAs3967, trng);

  Table t({"mean lifetime [s]", "events", "packets/event", "join/evt",
           "teardown/evt", "data/evt", "delivery during churn"});
  for (const double lifetime_s : {30.0, 120.0, 600.0}) {
    intra::Network net(&topo, intra::Config{}, bench::kSeed + 11);
    sim::Simulator& sim = net.simulator();
    std::vector<Identity> live;
    // Seed population.
    for (int i = 0; i < 400; ++i) {
      Identity ident = Identity::generate(net.rng());
      const auto gw = static_cast<graph::NodeIndex>(
          net.rng().index(net.router_count()));
      if (net.join_host(ident, gw).ok) live.push_back(ident);
    }
    const auto baseline = sim.counters().total();
    const auto base_join = sim.counters().get(sim::MsgCategory::kJoin);
    const auto base_td = sim.counters().get(sim::MsgCategory::kTeardown);
    const auto base_data = sim.counters().get(sim::MsgCategory::kData);
    std::uint64_t events = 0;
    std::size_t delivered = 0, attempted = 0;

    // Recurring churn tick: one death + one birth per exponential interval.
    std::function<void()> tick = [&] {
      if (!live.empty()) {
        const std::size_t victim = net.rng().index(live.size());
        (void)net.fail_host(live[victim].id());
        live.erase(live.begin() + static_cast<long>(victim));
        ++events;
      }
      Identity ident = Identity::generate(net.rng());
      const auto gw = static_cast<graph::NodeIndex>(
          net.rng().index(net.router_count()));
      if (net.join_host(ident, gw).ok) live.push_back(ident);
      ++events;
      // Sample deliveries mid-churn.
      for (int s = 0; s < 3 && !live.empty(); ++s) {
        const NodeId dest = live[net.rng().index(live.size())].id();
        const auto src = static_cast<graph::NodeIndex>(
            net.rng().index(net.router_count()));
        ++attempted;
        if (net.route(src, dest).delivered) ++delivered;
      }
      // Exponential inter-event time scaled so the population's mean
      // lifetime is `lifetime_s`: with N hosts, deaths occur at rate
      // N/lifetime.
      const double mean_gap_ms =
          1000.0 * lifetime_s / static_cast<double>(live.size() + 1);
      sim.schedule_in(net.rng().exponential(mean_gap_ms), tick);
    };
    sim.schedule_in(0.0, tick);
    sim.run_until(120'000.0);  // two simulated minutes

    const double n = events == 0 ? 1.0 : static_cast<double>(events);
    const double per_event =
        static_cast<double>(sim.counters().total() - baseline) / n;
    t.add_row({lifetime_s, static_cast<std::int64_t>(events), per_event,
               static_cast<double>(
                   sim.counters().get(sim::MsgCategory::kJoin) - base_join) / n,
               static_cast<double>(
                   sim.counters().get(sim::MsgCategory::kTeardown) - base_td) / n,
               static_cast<double>(
                   sim.counters().get(sim::MsgCategory::kData) - base_data) / n,
               attempted == 0 ? 0.0
                              : static_cast<double>(delivered) /
                                    static_cast<double>(attempted)});
  }
  t.print(os);
  os << "Per-event cost is flat across churn rates: joins, teardowns and "
        "data forwarding each pay a constant number of packets, so total "
        "control traffic scales linearly with the event rate (the paper's "
        "'one-time cost in the absence of churn', quantified in its "
        "presence).  Stale cache entries left by deaths are torn down "
        "lazily on first contact, and delivery stays perfect "
        "throughout.\n";
}

}  // namespace
}  // namespace rofl

int main() {
  using namespace rofl;
  bench::print_scale_note(std::cout);
  const std::size_t ids = bench::full_scale() ? 8'000 : 2'000;

  print_banner(std::cout,
               "Section 6.2 'Failure': per-event overhead vs join overhead "
               "[packets]");
  Table t({"ISP", "join", "mobility", "host failure", "link fail (ROFL)",
           "link fail (OSPF LSA)", "router failure"});
  for (const auto which : graph::all_rocketfuel_ases()) {
    const OverheadResult r = measure(which, ids);
    t.add_row({graph::rocketfuel_params(which).name, r.join, r.mobility,
               r.host_failure, r.link_failure, r.ospf_flood,
               r.router_failure});
  }
  t.print(std::cout);
  std::cout << "\nPaper reference: host failure and mobility cost is "
               "comparable to join overhead; non-partitioning link failures "
               "cost what OSPF reconvergence already pays (the LSA flood "
               "dominates).  Router failure ~= rehoming its resident IDs.\n";

  churn_dynamics(std::cout);
  return 0;
}
