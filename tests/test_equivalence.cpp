// test_equivalence.cpp -- cross-substrate protocol equivalence.
//
// The sans-I/O refactor's contract is that the simulator and the live mesh
// are two drivers over one protocol: the same ring rules (proto/ring.hpp)
// and the same wire encoder price the same workload identically on both.
// This test runs one identity set through (a) intra::Network on the
// discrete-event simulator and (b) a loopback mesh of LiveRouters, and
// requires the join message and byte counts to agree exactly -- not "close",
// byte-identical -- with both derived from the size of one encoded
// fingerless JoinRequest.
//
// The topology is a single router so that every locate terminates at the
// gateway and every splice is local: the only wire cost left on either
// substrate is the JoinRequest itself, which makes the comparison exact
// instead of modulo path lengths.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/isp_topology.hpp"
#include "net/mesh.hpp"
#include "rofl/network.hpp"
#include "sim/simulator.hpp"
#include "util/identity.hpp"
#include "wire/messages.hpp"

namespace rofl {
namespace {

constexpr std::uint64_t kSeed = 424242;
constexpr std::uint32_t kHosts = 48;

graph::IspTopology one_router_isp() {
  graph::IspTopology topo;
  topo.name = "one-router";
  topo.graph = graph::Graph(1);
  topo.pop_of = {0};
  topo.pops = {{0}};
  topo.is_backbone = {true};
  return topo;
}

/// Wire size of a fingerless JoinRequest.  Every field is fixed-width, so
/// any src/dst pair yields the frame size both substrates charge per join.
std::size_t fingerless_join_request_bytes() {
  wire::msg::JoinRequest req;
  req.nonce = 1;
  req.gateway = 0;
  const NodeId a = NodeId::from_u64(1);
  const NodeId b = NodeId::from_u64(2);
  const auto frame =
      wire::msg::encode_control(wire::msg::ControlMessage{req}, a, b);
  EXPECT_FALSE(frame.empty());
  return frame.size();
}

TEST(CrossSubstrate, JoinCountsMatchSimVsLoopbackMesh) {
  const std::vector<Identity> ids = net::make_identities(kSeed, kHosts);
  const std::size_t frame_bytes = fingerless_join_request_bytes();
  // The mesh seeds ids[0] at the bootstrap router and joins the rest; drive
  // the simulator through the identical join stream.
  const std::uint64_t joins = kHosts - 1;

  // Substrate A: the discrete-event simulator.
  graph::IspTopology topo = one_router_isp();
  intra::Network sim_net(&topo, intra::Config{}, kSeed + 1);
  for (std::uint32_t h = 1; h < kHosts; ++h) {
    const intra::JoinStats js = sim_net.join_host(ids[h], 0);
    ASSERT_TRUE(js.ok) << "sim join " << h << " failed";
  }
  const std::uint64_t sim_msgs =
      sim_net.simulator().counters().get(sim::MsgCategory::kJoin);
  const std::uint64_t sim_bytes =
      sim_net.simulator().counters().bytes(sim::MsgCategory::kJoin);

  // Substrate B: a loopback mesh of LiveRouters over the proto core.
  net::MeshConfig cfg;
  cfg.routers = 1;
  cfg.hosts = kHosts;
  cfg.fingers = 0;
  cfg.seed = kSeed;
  cfg.backend = net::MeshBackend::kLoopback;
  cfg.deadline_ms = 20'000.0;
  // The simulator joins hosts one at a time; a concurrent live storm would
  // race splices at the lone router and re-send redirected JoinRequests the
  // serial substrate never needs.  Serialize to compare like with like.
  cfg.max_outstanding = 1;
  net::MeshResult mesh = net::run_mesh(cfg);
  ASSERT_TRUE(mesh.converged);
  ASSERT_TRUE(mesh.audit.ok()) << (mesh.audit.errors.empty()
                                       ? "population mismatch"
                                       : mesh.audit.errors.front());
  EXPECT_EQ(mesh.joins_completed, joins);

  obs::Registry& m = mesh.metrics;
  const std::uint64_t live_msgs =
      m.counter_value(m.counter("net.msgs.join_request"));
  const std::uint64_t live_bytes =
      m.counter_value(m.counter("net.bytes.join_request"));

  // The heart of the test: both substrates priced the same joins through the
  // same encoder, and every other exchange was local on this topology.
  EXPECT_EQ(sim_msgs, joins);
  EXPECT_EQ(sim_bytes, joins * frame_bytes);
  EXPECT_EQ(live_msgs, sim_msgs);
  EXPECT_EQ(live_bytes, sim_bytes);

  // Single lossless router: nothing may have been redirected or retried, or
  // the counts above would only match by accident.
  EXPECT_EQ(m.counter_value(m.counter("net.redirects")), 0u);
  EXPECT_EQ(m.counter_value(m.counter("net.retrans")), 0u);
  EXPECT_EQ(m.counter_value(m.counter("net.joins.rejected")), 0u);
}

TEST(CrossSubstrate, SingleRouterSimRingIsSelfRing) {
  // The degenerate one-router bootstrap mirrors proto::Core::seed(): the
  // lone default vnode is its own successor and predecessor, so it is the
  // predecessor of every id and local joins succeed with one charged frame.
  graph::IspTopology topo = one_router_isp();
  intra::Network sim_net(&topo, intra::Config{}, 7);
  Rng rng(99);
  const intra::JoinStats js = sim_net.join_host(Identity::generate(rng), 0);
  ASSERT_TRUE(js.ok);
  EXPECT_EQ(js.messages, 1u);
  EXPECT_EQ(sim_net.simulator().counters().get(sim::MsgCategory::kJoin), 1u);
}

}  // namespace
}  // namespace rofl
