// as_topology.hpp -- Internet-like AS-level topology with policy annotations.
//
// The interdomain evaluation (section 6.3) runs over the Routeviews AS graph
// with customer/provider relationships inferred by the Subramanian et al.
// tool and per-AS host counts estimated from skitter traces.  This module
// provides the synthetic equivalent (see DESIGN.md): a tiered AS graph --
// a Tier-1 clique fully meshed with peering links, transit tiers that buy
// from the tier above and peer sideways, and a large stub fringe, some of it
// multihomed and some with backup links -- plus a Zipf host-count model and a
// degree-based hierarchy-inference pass that mirrors how the paper's input
// was produced.
//
// It also computes the structures the ROFL interdomain protocol consumes:
//   * G_X, the up-hierarchy graph of an AS (providers, their providers, ...,
//     section 2.3), with per-AS levels;
//   * customer subtrees ("down-hierarchies"), which define the merged ring
//     at each level of the Canon construction (section 4.1);
//   * the virtual-AS transformation for peering links (section 4.2, fig 4a).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace rofl::graph {

using AsIndex = std::uint32_t;
inline constexpr AsIndex kInvalidAs = 0xFFFFFFFFu;

/// Relationship of a neighbor from the local AS's perspective.
enum class AsRel : std::uint8_t {
  kProvider,        // neighbor is my (primary) provider
  kCustomer,        // neighbor is my customer
  kPeer,            // settlement-free peer
  kBackupProvider,  // provider used only on failure (section 4.2 backup)
  kBackupCustomer,  // reverse view of a backup link
};

[[nodiscard]] constexpr AsRel reverse_rel(AsRel r) {
  switch (r) {
    case AsRel::kProvider: return AsRel::kCustomer;
    case AsRel::kCustomer: return AsRel::kProvider;
    case AsRel::kPeer: return AsRel::kPeer;
    case AsRel::kBackupProvider: return AsRel::kBackupCustomer;
    case AsRel::kBackupCustomer: return AsRel::kBackupProvider;
  }
  return AsRel::kPeer;
}

struct AsAdjacency {
  AsIndex neighbor = kInvalidAs;
  AsRel rel = AsRel::kPeer;
};

struct AsGenParams {
  std::size_t tier1_count = 8;
  std::size_t tier2_count = 60;
  std::size_t tier3_count = 250;
  std::size_t stub_count = 1200;
  /// Probability a non-tier1 AS is multihomed (2+ providers).
  double multihome_prob = 0.45;
  /// Probability a multihomed AS marks one provider link as backup-only.
  double backup_prob = 0.2;
  /// Probability of a sideways peering link between same-tier ASes, scaled
  /// by tier (denser near the core).
  double tier2_peering_prob = 0.08;
  double tier3_peering_prob = 0.01;
  /// Zipf exponent for host counts across stubs/regionals.
  double host_zipf_s = 1.1;
  std::uint64_t total_hosts = 10'000'000;
};

/// The "up-hierarchy" graph G_X of section 2.3: X plus everything above it.
struct UpHierarchy {
  AsIndex root = kInvalidAs;  // the AS whose hierarchy this is (level 0)
  /// Members in breadth-first order starting with root.
  std::vector<AsIndex> nodes;
  /// level[a] = fewest provider-hops from root up to a (root => 0).
  std::unordered_map<AsIndex, unsigned> level;
  /// Customer->provider edges inside the hierarchy (customer first).
  std::vector<std::pair<AsIndex, AsIndex>> edges;

  [[nodiscard]] bool contains(AsIndex a) const { return level.contains(a); }
  [[nodiscard]] unsigned height() const;
};

class AsTopology {
 public:
  [[nodiscard]] std::size_t as_count() const { return adj_.size(); }
  [[nodiscard]] const std::vector<AsAdjacency>& adjacencies(AsIndex a) const {
    return adj_[a];
  }

  /// Tier assigned at generation time (1 = core). Virtual ASes report the
  /// tier of their highest-tier member minus a half step (they sit between).
  [[nodiscard]] unsigned tier(AsIndex a) const { return tier_[a]; }
  [[nodiscard]] bool is_stub(AsIndex a) const;
  [[nodiscard]] bool is_virtual(AsIndex a) const { return is_virtual_[a]; }
  [[nodiscard]] std::uint64_t host_count(AsIndex a) const { return hosts_[a]; }
  [[nodiscard]] std::uint64_t total_hosts() const;

  [[nodiscard]] std::vector<AsIndex> providers(AsIndex a,
                                               bool include_backup = false) const;
  [[nodiscard]] std::vector<AsIndex> customers(AsIndex a,
                                               bool include_backup = false) const;
  [[nodiscard]] std::vector<AsIndex> peers(AsIndex a) const;

  [[nodiscard]] std::optional<AsRel> relationship(AsIndex a, AsIndex b) const;

  // -- failure model --------------------------------------------------------
  void set_as_up(AsIndex a, bool up) { up_[a] = up; }
  [[nodiscard]] bool as_up(AsIndex a) const { return up_[a]; }
  void set_link_up(AsIndex a, AsIndex b, bool up);
  [[nodiscard]] bool link_up(AsIndex a, AsIndex b) const;

  // -- hierarchy queries ----------------------------------------------------
  /// Builds G_X for `x` following live provider links (and optionally backup
  /// providers).  Peering links are NOT part of G_X; they are handled by the
  /// virtual-AS transformation or the bloom-filter rule.
  [[nodiscard]] UpHierarchy up_hierarchy(AsIndex x,
                                         bool include_backup = false) const;

  /// All ASes in `a`'s customer subtree (including `a`), following live
  /// customer links -- the membership of the merged ring rooted at `a`.
  [[nodiscard]] std::vector<AsIndex> customer_subtree(AsIndex a) const;

  /// True if `member` lies in `root`'s customer subtree.
  [[nodiscard]] bool in_subtree(AsIndex root, AsIndex member) const;

  /// Earliest (lowest-level) common ancestor set: the minimal-tier ASes that
  /// have both x and y in their subtree.  Empty if none (partition).
  [[nodiscard]] std::vector<AsIndex> common_ancestors(AsIndex x, AsIndex y) const;

  // -- construction ---------------------------------------------------------
  /// Generates the tiered Internet-like topology described above.
  [[nodiscard]] static AsTopology make_internet_like(const AsGenParams& params,
                                                     Rng& rng);

  /// Builds a small hand-specified topology (tests).  `links` are
  /// (a, b, rel-of-b-from-a's-view).
  [[nodiscard]] static AsTopology from_links(
      std::size_t as_count,
      const std::vector<std::tuple<AsIndex, AsIndex, AsRel>>& links);

  /// The virtual-AS conversion rule for peering (section 4.2, figure 4a):
  /// returns a copy of the topology where each peering clique is replaced by
  /// a virtual AS that is a provider of all clique members and a customer of
  /// each member's providers.  `virtual_for` maps new virtual AS indices to
  /// the clique members they represent.
  [[nodiscard]] AsTopology with_virtual_peering_ases(
      std::vector<std::pair<AsIndex, std::vector<AsIndex>>>* virtual_for =
          nullptr) const;

  /// Degree-based tier inference in the spirit of Subramanian et al. [35]:
  /// ranks ASes by degree and assigns inferred tiers; returns inferred tier
  /// per AS.  Used to validate that experiments driven by inferred instead
  /// of ground-truth hierarchy behave the same.
  [[nodiscard]] std::vector<unsigned> infer_tiers_by_degree() const;

  void set_host_count(AsIndex a, std::uint64_t hosts) { hosts_[a] = hosts; }

 private:
  AsIndex add_as(unsigned tier, bool is_virtual = false);
  void add_link(AsIndex a, AsIndex b, AsRel rel_of_b_from_a);
  void remove_link(AsIndex a, AsIndex b);

  std::vector<std::vector<AsAdjacency>> adj_;
  std::vector<unsigned> tier_;
  std::vector<std::uint64_t> hosts_;
  std::vector<bool> up_;
  std::vector<bool> is_virtual_;
  // Link up/down state keyed by canonical (min,max) pair.
  std::unordered_map<std::uint64_t, bool> link_down_;
  [[nodiscard]] static std::uint64_t link_key(AsIndex a, AsIndex b);
};

}  // namespace rofl::graph
