#include "graph/as_topology.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>
#include <tuple>

namespace rofl::graph {

unsigned UpHierarchy::height() const {
  unsigned h = 0;
  for (const auto& [as, lvl] : level) h = std::max(h, lvl);
  return h;
}

bool AsTopology::is_stub(AsIndex a) const {
  return customers(a, /*include_backup=*/true).empty();
}

std::uint64_t AsTopology::total_hosts() const {
  return std::accumulate(hosts_.begin(), hosts_.end(), std::uint64_t{0});
}

std::vector<AsIndex> AsTopology::providers(AsIndex a, bool include_backup) const {
  std::vector<AsIndex> out;
  for (const auto& adj : adj_[a]) {
    if (adj.rel == AsRel::kProvider ||
        (include_backup && adj.rel == AsRel::kBackupProvider)) {
      out.push_back(adj.neighbor);
    }
  }
  return out;
}

std::vector<AsIndex> AsTopology::customers(AsIndex a, bool include_backup) const {
  std::vector<AsIndex> out;
  for (const auto& adj : adj_[a]) {
    if (adj.rel == AsRel::kCustomer ||
        (include_backup && adj.rel == AsRel::kBackupCustomer)) {
      out.push_back(adj.neighbor);
    }
  }
  return out;
}

std::vector<AsIndex> AsTopology::peers(AsIndex a) const {
  std::vector<AsIndex> out;
  for (const auto& adj : adj_[a]) {
    if (adj.rel == AsRel::kPeer) out.push_back(adj.neighbor);
  }
  return out;
}

std::optional<AsRel> AsTopology::relationship(AsIndex a, AsIndex b) const {
  for (const auto& adj : adj_[a]) {
    if (adj.neighbor == b) return adj.rel;
  }
  return std::nullopt;
}

std::uint64_t AsTopology::link_key(AsIndex a, AsIndex b) {
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  return (std::uint64_t{hi} << 32) | lo;
}

void AsTopology::set_link_up(AsIndex a, AsIndex b, bool up) {
  if (up) {
    link_down_.erase(link_key(a, b));
  } else {
    link_down_[link_key(a, b)] = true;
  }
}

bool AsTopology::link_up(AsIndex a, AsIndex b) const {
  if (!up_[a] || !up_[b]) return false;
  return !link_down_.contains(link_key(a, b));
}

UpHierarchy AsTopology::up_hierarchy(AsIndex x, bool include_backup) const {
  UpHierarchy g;
  g.root = x;
  if (!up_[x]) return g;
  std::deque<AsIndex> frontier{x};
  g.level[x] = 0;
  g.nodes.push_back(x);
  while (!frontier.empty()) {
    const AsIndex cur = frontier.front();
    frontier.pop_front();
    for (AsIndex p : providers(cur, include_backup)) {
      if (!up_[p] || !link_up(cur, p)) continue;
      g.edges.emplace_back(cur, p);
      if (!g.level.contains(p)) {
        g.level[p] = g.level[cur] + 1;
        g.nodes.push_back(p);
        frontier.push_back(p);
      }
    }
  }
  return g;
}

std::vector<AsIndex> AsTopology::customer_subtree(AsIndex a) const {
  std::vector<AsIndex> out;
  if (!up_[a]) return out;
  std::vector<bool> seen(adj_.size(), false);
  std::deque<AsIndex> frontier{a};
  seen[a] = true;
  while (!frontier.empty()) {
    const AsIndex cur = frontier.front();
    frontier.pop_front();
    out.push_back(cur);
    for (AsIndex c : customers(cur, /*include_backup=*/true)) {
      if (seen[c] || !up_[c] || !link_up(cur, c)) continue;
      seen[c] = true;
      frontier.push_back(c);
    }
  }
  return out;
}

bool AsTopology::in_subtree(AsIndex root, AsIndex member) const {
  // Walk member's up-hierarchy; cheaper than materialising root's subtree.
  const auto g = up_hierarchy(member, /*include_backup=*/true);
  return g.contains(root);
}

std::vector<AsIndex> AsTopology::common_ancestors(AsIndex x, AsIndex y) const {
  const auto gx = up_hierarchy(x, /*include_backup=*/true);
  const auto gy = up_hierarchy(y, /*include_backup=*/true);
  std::vector<AsIndex> common;
  for (AsIndex a : gx.nodes) {
    if (gy.contains(a)) common.push_back(a);
  }
  if (common.empty()) return common;
  // Keep only the "earliest" ancestors: minimal combined level.
  unsigned best = ~0u;
  for (AsIndex a : common) best = std::min(best, gx.level.at(a) + gy.level.at(a));
  std::vector<AsIndex> out;
  for (AsIndex a : common) {
    if (gx.level.at(a) + gy.level.at(a) == best) out.push_back(a);
  }
  return out;
}

AsIndex AsTopology::add_as(unsigned tier, bool is_virtual) {
  adj_.emplace_back();
  tier_.push_back(tier);
  hosts_.push_back(0);
  up_.push_back(true);
  is_virtual_.push_back(is_virtual);
  return static_cast<AsIndex>(adj_.size() - 1);
}

void AsTopology::add_link(AsIndex a, AsIndex b, AsRel rel_of_b_from_a) {
  assert(a < adj_.size() && b < adj_.size() && a != b);
  if (relationship(a, b).has_value()) return;  // no parallel links
  adj_[a].push_back(AsAdjacency{b, rel_of_b_from_a});
  adj_[b].push_back(AsAdjacency{a, reverse_rel(rel_of_b_from_a)});
}

void AsTopology::remove_link(AsIndex a, AsIndex b) {
  auto erase_from = [](std::vector<AsAdjacency>& v, AsIndex n) {
    std::erase_if(v, [n](const AsAdjacency& adj) { return adj.neighbor == n; });
  };
  erase_from(adj_[a], b);
  erase_from(adj_[b], a);
}

AsTopology AsTopology::make_internet_like(const AsGenParams& p, Rng& rng) {
  AsTopology t;
  std::vector<AsIndex> tier1, tier2, tier3, stubs;
  for (std::size_t i = 0; i < p.tier1_count; ++i) tier1.push_back(t.add_as(1));
  for (std::size_t i = 0; i < p.tier2_count; ++i) tier2.push_back(t.add_as(2));
  for (std::size_t i = 0; i < p.tier3_count; ++i) tier3.push_back(t.add_as(3));
  for (std::size_t i = 0; i < p.stub_count; ++i) stubs.push_back(t.add_as(4));

  // Tier-1 clique: full mesh of peering links.
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      t.add_link(tier1[i], tier1[j], AsRel::kPeer);
    }
  }

  auto attach = [&](AsIndex child, const std::vector<AsIndex>& pool) {
    // Primary provider plus optional multihoming, possibly as backup.
    const AsIndex primary = pool[rng.index(pool.size())];
    t.add_link(child, primary, AsRel::kProvider);
    if (rng.chance(p.multihome_prob) && pool.size() > 1) {
      const unsigned extra = 1 + static_cast<unsigned>(rng.below(2));
      for (unsigned e = 0; e < extra; ++e) {
        AsIndex other = pool[rng.index(pool.size())];
        if (other == primary || t.relationship(child, other).has_value()) continue;
        const bool backup = rng.chance(p.backup_prob);
        t.add_link(child, other,
                   backup ? AsRel::kBackupProvider : AsRel::kProvider);
      }
    }
  };

  for (AsIndex a : tier2) attach(a, tier1);
  // Tier-3 buys mostly from tier-2 but occasionally directly from tier-1.
  for (AsIndex a : tier3) attach(a, rng.chance(0.15) ? tier1 : tier2);
  // Stubs buy from tier-2/3.
  for (AsIndex a : stubs) attach(a, rng.chance(0.35) ? tier2 : tier3);

  // Sideways peering.
  auto add_peering = [&](const std::vector<AsIndex>& tier, double prob) {
    for (std::size_t i = 0; i < tier.size(); ++i) {
      for (std::size_t j = i + 1; j < tier.size(); ++j) {
        if (rng.chance(prob) && !t.relationship(tier[i], tier[j])) {
          t.add_link(tier[i], tier[j], AsRel::kPeer);
        }
      }
    }
  };
  add_peering(tier2, p.tier2_peering_prob);
  add_peering(tier3, p.tier3_peering_prob);

  // Host counts: heavy-tailed across the edge (stubs + tier3), light in the
  // core, normalised to total_hosts -- the skitter-estimate stand-in.
  std::vector<AsIndex> edge_ases = stubs;
  edge_ases.insert(edge_ases.end(), tier3.begin(), tier3.end());
  rng.shuffle(edge_ases);
  const ZipfSampler zipf(edge_ases.size(), p.host_zipf_s);
  double mass_total = 0.0;
  std::vector<double> mass(edge_ases.size());
  for (std::size_t i = 0; i < edge_ases.size(); ++i) {
    mass[i] = zipf.pmf(i);
    mass_total += mass[i];
  }
  for (std::size_t i = 0; i < edge_ases.size(); ++i) {
    const auto hosts = static_cast<std::uint64_t>(
        static_cast<double>(p.total_hosts) * mass[i] / mass_total);
    t.hosts_[edge_ases[i]] = std::max<std::uint64_t>(1, hosts);
  }
  return t;
}

AsTopology AsTopology::from_links(
    std::size_t as_count,
    const std::vector<std::tuple<AsIndex, AsIndex, AsRel>>& links) {
  AsTopology t;
  for (std::size_t i = 0; i < as_count; ++i) t.add_as(0);
  for (const auto& [a, b, rel] : links) t.add_link(a, b, rel);
  // tier := 1 + height of the AS's up-hierarchy, so providers get lower
  // numbers (1 = core) and stubs the highest.
  for (AsIndex a = 0; a < t.as_count(); ++a) {
    t.tier_[a] = 1 + t.up_hierarchy(a).height();
    t.hosts_[a] = 1;
  }
  return t;
}

AsTopology AsTopology::with_virtual_peering_ases(
    std::vector<std::pair<AsIndex, std::vector<AsIndex>>>* virtual_for) const {
  AsTopology t = *this;
  // Find peering "cliques": maximal groups where every pair peers.  We grow
  // greedily from each unassigned peering link; the Tier-1 full mesh thus
  // collapses into a single virtual AS as the paper notes.
  std::unordered_map<std::uint64_t, bool> used;
  std::vector<std::vector<AsIndex>> cliques;
  for (AsIndex a = 0; a < as_count(); ++a) {
    for (AsIndex b : peers(a)) {
      if (a >= b) continue;
      const auto key = link_key(a, b);
      if (used.contains(key)) continue;
      std::vector<AsIndex> clique{a, b};
      for (AsIndex c : peers(a)) {
        if (c == b) continue;
        const bool peers_all = std::all_of(
            clique.begin(), clique.end(), [&](AsIndex m) {
              return relationship(c, m) == AsRel::kPeer;
            });
        if (peers_all) clique.push_back(c);
      }
      for (std::size_t i = 0; i < clique.size(); ++i) {
        for (std::size_t j = i + 1; j < clique.size(); ++j) {
          used[link_key(clique[i], clique[j])] = true;
        }
      }
      cliques.push_back(std::move(clique));
    }
  }
  for (const auto& clique : cliques) {
    unsigned min_tier = ~0u;
    for (AsIndex m : clique) min_tier = std::min(min_tier, tier(m));
    const AsIndex v = t.add_as(min_tier == 0 ? 0 : min_tier - 1,
                               /*is_virtual=*/true);
    for (AsIndex m : clique) {
      // Virtual AS acts as provider of each clique member...
      t.add_link(m, v, AsRel::kProvider);
      // ...and as customer of each member's (real) providers.
      for (AsIndex prov : providers(m)) {
        t.add_link(v, prov, AsRel::kProvider);
      }
      // The original peering links disappear from the converted graph.
      for (AsIndex other : clique) {
        if (m < other) t.remove_link(m, other);
      }
    }
    if (virtual_for != nullptr) virtual_for->emplace_back(v, clique);
  }
  return t;
}

std::vector<unsigned> AsTopology::infer_tiers_by_degree() const {
  // Rank by total degree and cut at the generation-time tier proportions --
  // a simplified stand-in for the Subramanian et al. inference pass.
  std::vector<AsIndex> order(as_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](AsIndex a, AsIndex b) {
    return adj_[a].size() > adj_[b].size();
  });
  std::vector<unsigned> inferred(as_count(), 4);
  std::size_t t1 = 0, t2 = 0, t3 = 0;
  for (unsigned tv : tier_) {
    if (tv <= 1) ++t1;
    else if (tv == 2) ++t2;
    else if (tv == 3) ++t3;
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i < t1) inferred[order[i]] = 1;
    else if (i < t1 + t2) inferred[order[i]] = 2;
    else if (i < t1 + t2 + t3) inferred[order[i]] = 3;
  }
  return inferred;
}

}  // namespace rofl::graph
