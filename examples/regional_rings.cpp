// regional_rings -- intradomain routing control via sub-rings (section 5.1).
//
// "A transit AS that is spread over multiple countries can create sub-rings
// corresponding to each of those regions.  The isolation property ensures
// that internal traffic will not transit costly inter-country links."
//
// We model one multinational carrier as a two-level hierarchy: a corporate
// root with one child per country region.  Hosts join their region's ring;
// Canon merging gives every region its own sub-ring under the corporate
// ring, and the isolation property keeps domestic traffic domestic.
//
//   $ ./build/examples/regional_rings
#include <iostream>

#include "interdomain/inter_network.hpp"

int main() {
  using namespace rofl;
  using graph::AsRel;

  // corporate backbone (0) with four country regions.
  enum : graph::AsIndex { kCorp, kUS, kEU, kJP, kAU, kRegions };
  auto topo = graph::AsTopology::from_links(
      kRegions, {{kUS, kCorp, AsRel::kProvider},
                 {kEU, kCorp, AsRel::kProvider},
                 {kJP, kCorp, AsRel::kProvider},
                 {kAU, kCorp, AsRel::kProvider}});
  const char* names[] = {"corp", "US", "EU", "JP", "AU"};
  for (graph::AsIndex region : {kUS, kEU, kJP, kAU}) {
    topo.set_host_count(region, 500);
  }

  inter::InterNetwork net(&topo, inter::InterConfig{}, /*seed=*/1789);

  // Hosts join through their region; the region ring and the corporate ring
  // merge Canon-style.
  std::vector<std::pair<NodeId, graph::AsIndex>> hosts;
  for (graph::AsIndex region : {kUS, kEU, kJP, kAU}) {
    for (int i = 0; i < 12; ++i) {
      Identity ident = Identity::generate(net.rng());
      if (net.join_host(ident, region,
                        inter::JoinStrategy::kRecursiveMultihomed)
              .ok) {
        hosts.emplace_back(ident.id(), region);
      }
    }
  }
  std::string err;
  std::cout << "region + corporate rings verified: "
            << (net.verify_rings(&err) ? "yes" : err) << "\n\n";

  // Domestic traffic never crosses an inter-country link.
  std::size_t domestic = 0, domestic_contained = 0;
  std::size_t international = 0, international_via_corp = 0;
  for (const auto& [src_id, src_region] : hosts) {
    for (const auto& [dst_id, dst_region] : hosts) {
      if (src_id == dst_id) continue;
      std::vector<graph::AsIndex> trace;
      const auto rs = net.route(src_region, dst_id, &trace);
      if (!rs.delivered) continue;
      bool left_region = false;
      for (const auto a : trace) {
        if (a != src_region && a != dst_region) left_region = true;
      }
      if (src_region == dst_region) {
        ++domestic;
        if (!left_region && rs.as_hops == 0) ++domestic_contained;
      } else {
        ++international;
        if (left_region) ++international_via_corp;
      }
    }
  }
  std::cout << "domestic flows staying inside their region: "
            << domestic_contained << "/" << domestic << "\n";
  std::cout << "international flows via the corporate backbone: "
            << international_via_corp << "/" << international << "\n\n";

  // Per-region ring sizes (every region hosts its own sub-ring).
  for (graph::AsIndex region : {kUS, kEU, kJP, kAU}) {
    std::cout << "sub-ring " << names[region] << ": "
              << net.ring_size(region) << " identifiers\n";
  }
  std::cout << "corporate ring: " << net.ring_size(kCorp)
            << " identifiers\n";

  // An entire region going dark neither disturbs the other sub-rings nor
  // strands their traffic.
  std::cout << "\nJP region goes dark...\n";
  (void)net.fail_as(kJP);
  std::size_t ok = 0, total = 0;
  for (const auto& [id, region] : hosts) {
    if (region == kJP) continue;
    ++total;
    if (net.route(kUS, id).delivered) ++ok;
  }
  std::cout << "non-JP hosts reachable: " << ok << "/" << total << "\n";
  (void)net.restore_as(kJP);
  std::cout << "JP restored; rings verified: "
            << (net.verify_rings(&err) ? "yes" : err) << "\n";
  return 0;
}
