// Label-switched fast path (DESIGN.md section 15): table mechanics, the
// install -> hit -> teardown lifecycle under churn, auditor cleanliness at
// every step, and the headline equivalence contract -- labels change per-hop
// cost, never route outcomes, so labels-on and labels-off runs produce
// bit-identical RouteStats and digests.
#include "rofl/label_table.hpp"

#include <gtest/gtest.h>

#include "audit/auditor.hpp"
#include "audit/churn.hpp"
#include "rofl/network.hpp"

namespace rofl::intra {
namespace {

NodeId id(std::uint64_t v) { return NodeId::from_u64(v); }

TEST(LabelTable, InstallLookupRemove) {
  LabelTable t;
  const std::uint32_t a = t.install(id(1), 7, kNoLabel);
  const std::uint32_t b = t.install(id(2), 8, a);
  EXPECT_EQ(t.live(), 2u);
  const LabelEntry* ea = t.lookup(a);
  ASSERT_NE(ea, nullptr);
  EXPECT_EQ(ea->dest, id(1));
  EXPECT_EQ(ea->out, 7u);
  EXPECT_EQ(ea->next_label, kNoLabel);
  const LabelEntry* eb = t.lookup(b);
  ASSERT_NE(eb, nullptr);
  EXPECT_EQ(eb->next_label, a);
  t.remove(a);
  EXPECT_EQ(t.lookup(a), nullptr);
  EXPECT_EQ(t.live(), 1u);
  // Out-of-range and double-remove are harmless no-ops.
  EXPECT_EQ(t.lookup(12345), nullptr);
  t.remove(a);
  EXPECT_EQ(t.live(), 1u);
}

TEST(LabelTable, RetiredLabelsReuseLifo) {
  LabelTable t;
  const std::uint32_t a = t.install(id(1), 1, kNoLabel);
  const std::uint32_t b = t.install(id(2), 2, kNoLabel);
  t.remove(a);
  t.remove(b);
  // LIFO reuse: the most recently retired label comes back first, so a
  // same-seed rerun allocates the identical label sequence.
  EXPECT_EQ(t.install(id(3), 3, kNoLabel), b);
  EXPECT_EQ(t.install(id(4), 4, kNoLabel), a);
  std::size_t seen = 0;
  t.for_each([&](std::uint32_t label, const LabelEntry& e) {
    ++seen;
    EXPECT_TRUE(label == a || label == b);
    EXPECT_TRUE(e.in_use);
  });
  EXPECT_EQ(seen, 2u);
}

struct TestNet {
  graph::IspTopology topo;
  std::unique_ptr<Network> net;

  explicit TestNet(Config cfg = {}, std::uint64_t seed = 4242,
                   std::size_t routers = 30, std::size_t pops = 5) {
    Rng trng(seed);
    graph::IspParams p;
    p.router_count = routers;
    p.pop_count = pops;
    topo = graph::make_isp_topology(p, trng);
    net = std::make_unique<Network>(&topo, cfg, seed + 1);
  }

  NodeId join(NodeIndex gw, HostClass cls = HostClass::kStable) {
    Identity ident = Identity::generate(net->rng());
    const JoinStats js = net->join_host(ident, gw, cls);
    EXPECT_TRUE(js.ok);
    return ident.id();
  }

  std::uint64_t counter(const char* name) {
    obs::Registry& m = net->simulator().metrics();
    return m.counter_value(m.counter(name));
  }
};

void expect_rs_eq(const RouteStats& a, const RouteStats& b) {
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.physical_hops, b.physical_hops);
  EXPECT_EQ(a.ring_hops, b.ring_hops);
  EXPECT_EQ(a.shortest_hops, b.shortest_hops);
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
}

TEST(Labels, SecondPacketServedOffLabels) {
  Config cfg;
  cfg.enable_labels = true;
  TestNet t(cfg);
  const NodeId dest = t.join(4);
  const NodeIndex src = 17;
  ASSERT_FALSE(t.net->router(src).hosts(dest));

  // First packet: greedy walk, miss, install.
  const RouteStats first = t.net->route(src, dest);
  ASSERT_TRUE(first.delivered);
  EXPECT_EQ(t.counter("labels.misses"), 1u);
  EXPECT_EQ(t.net->label_totals().flows, 1u);
  EXPECT_EQ(t.net->label_totals().entries, first.physical_hops + 1);
  EXPECT_GT(t.counter("bytes.label_install"), 0u);

  // Second packet: label replay, identical outcome.
  const RouteStats second = t.net->route(src, dest);
  EXPECT_EQ(t.counter("labels.hits"), 1u);
  EXPECT_GT(t.counter("labels.bytes_saved"), 0u);
  expect_rs_eq(first, second);
}

TEST(Labels, EquivalenceAcrossModesOverManyFlows) {
  Config on;
  on.enable_labels = true;
  TestNet a(on, 777);
  TestNet b(Config{}, 777);
  std::vector<NodeId> ids_a, ids_b;
  for (std::size_t i = 0; i < 24; ++i) {
    const auto gw = static_cast<NodeIndex>(i % a.net->router_count());
    ids_a.push_back(a.join(gw));
    ids_b.push_back(b.join(gw));
  }
  ASSERT_EQ(ids_a, ids_b);
  // Every flow routed twice: packet 1 compares greedy-vs-greedy, packet 2
  // compares labeled replay vs a second greedy walk.
  for (std::size_t i = 0; i < ids_a.size(); ++i) {
    const auto src =
        static_cast<NodeIndex>((i * 7 + 3) % a.net->router_count());
    for (int pkt = 0; pkt < 2; ++pkt) {
      const RouteStats ra = a.net->route(src, ids_a[i]);
      const RouteStats rb = b.net->route(src, ids_b[i]);
      expect_rs_eq(ra, rb);
    }
  }
  EXPECT_GT(a.counter("labels.hits"), 0u);
}

TEST(Labels, LifecycleUnderChurnStaysAuditorClean) {
  Config cfg;
  cfg.enable_labels = true;
  TestNet t(cfg);
  audit::Auditor auditor(t.net.get());
  const auto clean = [&](const char* when) {
    const audit::AuditReport rep = auditor.run();
    EXPECT_EQ(rep.hard_count(), 0u) << when << ": " << rep.to_string();
  };

  const NodeId d1 = t.join(4);
  const NodeId d2 = t.join(9);
  (void)t.join(21);
  clean("after joins");

  // Install two flows and replay one.
  (void)t.net->route(17, d1);
  (void)t.net->route(17, d1);
  (void)t.net->route(2, d2);
  EXPECT_EQ(t.net->label_totals().flows, 2u);
  EXPECT_EQ(t.counter("labels.hits"), 1u);
  clean("flows installed");

  // Graceful leave of a destination flushes every flow (labels die with
  // their pointer path -- any ring mutation invalidates wholesale).
  (void)t.net->leave_host(d1);
  EXPECT_EQ(t.net->label_totals().flows, 0u);
  EXPECT_EQ(t.net->label_totals().entries, 0u);
  EXPECT_GT(t.counter("labels.teardowns"), 0u);
  clean("after leave");

  // Next packet reinstalls; a router crash flushes again.
  (void)t.net->route(2, d2);
  (void)t.net->route(2, d2);
  ASSERT_GE(t.net->label_totals().flows, 1u);
  (void)t.net->fail_router(5);
  EXPECT_EQ(t.net->label_totals().flows, 0u);
  clean("after router crash");
  t.net->restore_router(5);
  clean("after restore");

  // Ungraceful host death (session-timeout path) also flushes.
  (void)t.net->route(11, d2);
  ASSERT_GE(t.net->label_totals().flows, 1u);
  (void)t.net->fail_host(d2);
  EXPECT_EQ(t.net->label_totals().flows, 0u);
  clean("after host crash");
}

TEST(Labels, LinkFailureFlushesFlows) {
  Config cfg;
  cfg.enable_labels = true;
  TestNet t(cfg);
  const NodeId dest = t.join(4);
  (void)t.net->route(17, dest);
  ASSERT_EQ(t.net->label_totals().flows, 1u);
  const NodeIndex u = 10;
  const NodeIndex v = t.topo.graph.neighbors(u).front().to;
  (void)t.net->fail_link(u, v);
  EXPECT_EQ(t.net->label_totals().flows, 0u);
  (void)t.net->restore_link(u, v);
  // Reinstallable afterwards.
  (void)t.net->route(17, dest);
  (void)t.net->route(17, dest);
  EXPECT_EQ(t.net->label_totals().flows, 1u);
  EXPECT_GT(t.counter("labels.hits"), 0u);
}

TEST(Labels, ChurnHarnessDigestsMatchAcrossModesAndRuns) {
  audit::ChurnConfig cc;
  cc.events = 120;
  audit::ChurnRunParams params;
  params.router_count = 40;
  params.pop_count = 6;
  params.initial_hosts = 24;
  params.seed = 31;
  const auto schedule = audit::make_churn_schedule(cc, params.seed);

  params.net_cfg.enable_labels = true;
  const audit::ChurnRunResult on1 = audit::run_churn(params, schedule);
  const audit::ChurnRunResult on2 = audit::run_churn(params, schedule);
  params.net_cfg.enable_labels = false;
  const audit::ChurnRunResult off = audit::run_churn(params, schedule);

  EXPECT_TRUE(on1.converged) << on1.err;
  EXPECT_EQ(on1.hard, 0u);
  // Same-seed labels-on double run: bit-identical everything.
  EXPECT_EQ(on1.digest, on2.digest);
  EXPECT_EQ(on1.routes_digest, on2.routes_digest);
  EXPECT_EQ(on1.metrics_json, on2.metrics_json);
  // Across modes only the routes digest is comparable (label audit checks
  // change check counts; labeled frames change byte counters).
  EXPECT_EQ(on1.routes_digest, off.routes_digest);
}

}  // namespace
}  // namespace rofl::intra
