// ospf_routing.hpp -- shortest-path (OSPF) host routing baseline.
//
// Figure 6b compares ROFL's per-router load against plain shortest-path
// routing: "for a particular x value, we plot the load at the i-th most
// congested router in an OSPF network, and the load under ROFL for that same
// router."  This baseline forwards host traffic along IGP shortest paths and
// counts per-router traversals for that comparison; it is also the stretch-1
// reference used by figure 6a's ratio.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/isp_topology.hpp"
#include "linkstate/link_state.hpp"
#include "util/node_id.hpp"

namespace rofl::baselines {

class OspfRouting {
 public:
  explicit OspfRouting(const graph::IspTopology* topo);

  /// Attaches a host binding (no protocol cost modeled; OSPF routes to
  /// routers, host bindings ride on top).
  void attach_host(const NodeId& id, graph::NodeIndex gateway);

  struct RouteStats {
    bool delivered = false;
    std::uint32_t physical_hops = 0;
  };
  /// Routes along the shortest path and increments the traversal counter of
  /// every router on it (including the endpoints).
  RouteStats route(graph::NodeIndex src, const NodeId& dest);

  [[nodiscard]] const std::vector<std::uint64_t>& traversals() const {
    return traversals_;
  }
  void reset_traversals();

 private:
  const graph::IspTopology* topo_;
  linkstate::LinkStateMap map_;
  std::map<NodeId, graph::NodeIndex> bindings_;
  std::vector<std::uint64_t> traversals_;
};

}  // namespace rofl::baselines
