#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace rofl::graph {

NodeIndex Graph::add_node() {
  adj_.emplace_back();
  node_up_.push_back(true);
  return static_cast<NodeIndex>(adj_.size() - 1);
}

bool Graph::add_edge(NodeIndex u, NodeIndex v, double latency_ms,
                     double weight) {
  assert(u < adj_.size() && v < adj_.size());
  if (u == v || has_edge(u, v)) return false;
  adj_[u].push_back(Edge{v, latency_ms, weight, true});
  adj_[v].push_back(Edge{u, latency_ms, weight, true});
  ++edge_count_;
  return true;
}

bool Graph::has_edge(NodeIndex u, NodeIndex v) const {
  return std::any_of(adj_[u].begin(), adj_[u].end(),
                     [v](const Edge& e) { return e.to == v; });
}

std::size_t Graph::live_degree(NodeIndex u) const {
  if (!node_up_[u]) return 0;
  std::size_t d = 0;
  for (const Edge& e : adj_[u]) {
    if (e.up && node_up_[e.to]) ++d;
  }
  return d;
}

void Graph::set_link_up(NodeIndex u, NodeIndex v, bool up) {
  for (Edge& e : adj_[u]) {
    if (e.to == v) e.up = up;
  }
  for (Edge& e : adj_[v]) {
    if (e.to == u) e.up = up;
  }
}

void Graph::set_node_up(NodeIndex u, bool up) { node_up_[u] = up; }

bool Graph::link_up(NodeIndex u, NodeIndex v) const {
  for (const Edge& e : adj_[u]) {
    if (e.to == v) return e.up && node_up_[u] && node_up_[v];
  }
  return false;
}

ShortestPaths Graph::dijkstra(NodeIndex src) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ShortestPaths sp;
  sp.dist.assign(adj_.size(), kInf);
  sp.latency_ms.assign(adj_.size(), kInf);
  sp.parent.assign(adj_.size(), kInvalidNode);
  sp.hops.assign(adj_.size(), 0);
  if (!node_up_[src]) return sp;

  using Item = std::pair<double, NodeIndex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  sp.dist[src] = 0.0;
  sp.latency_ms[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > sp.dist[u]) continue;
    for (const Edge& e : adj_[u]) {
      if (!e.up || !node_up_[e.to]) continue;
      const double nd = d + e.weight;
      if (nd < sp.dist[e.to]) {
        sp.dist[e.to] = nd;
        sp.latency_ms[e.to] = sp.latency_ms[u] + e.latency_ms;
        sp.parent[e.to] = u;
        sp.hops[e.to] = sp.hops[u] + 1;
        pq.emplace(nd, e.to);
      }
    }
  }
  return sp;
}

std::vector<NodeIndex> Graph::extract_path(const ShortestPaths& sp,
                                           NodeIndex src, NodeIndex dst) {
  std::vector<NodeIndex> path;
  if (!sp.reachable(dst)) return path;
  for (NodeIndex v = dst; v != kInvalidNode; v = sp.parent[v]) {
    path.push_back(v);
    if (v == src) break;
  }
  if (path.back() != src) return {};
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::uint32_t> Graph::bfs_hops(NodeIndex src) const {
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(adj_.size(), kUnreached);
  if (!node_up_[src]) return dist;
  std::queue<NodeIndex> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeIndex u = q.front();
    q.pop();
    for (const Edge& e : adj_[u]) {
      if (!e.up || !node_up_[e.to] || dist[e.to] != kUnreached) continue;
      dist[e.to] = dist[u] + 1;
      q.push(e.to);
    }
  }
  return dist;
}

bool Graph::connected() const {
  const auto comp = components();
  NodeIndex label = kInvalidNode;
  for (NodeIndex u = 0; u < adj_.size(); ++u) {
    if (!node_up_[u]) continue;
    if (label == kInvalidNode) label = comp[u];
    if (comp[u] != label) return false;
  }
  return true;
}

std::vector<NodeIndex> Graph::components() const {
  std::vector<NodeIndex> comp(adj_.size(), kInvalidNode);
  NodeIndex next_label = 0;
  for (NodeIndex s = 0; s < adj_.size(); ++s) {
    if (!node_up_[s] || comp[s] != kInvalidNode) continue;
    const NodeIndex label = next_label++;
    std::queue<NodeIndex> q;
    comp[s] = label;
    q.push(s);
    while (!q.empty()) {
      const NodeIndex u = q.front();
      q.pop();
      for (const Edge& e : adj_[u]) {
        if (!e.up || !node_up_[e.to] || comp[e.to] != kInvalidNode) continue;
        comp[e.to] = label;
        q.push(e.to);
      }
    }
  }
  return comp;
}

std::uint32_t Graph::diameter_hops(std::size_t sample_sources) const {
  std::uint32_t best = 0;
  const std::size_t n = adj_.size();
  const std::size_t step = std::max<std::size_t>(1, n / std::max<std::size_t>(1, sample_sources));
  for (NodeIndex s = 0; s < n; s += static_cast<NodeIndex>(step)) {
    if (!node_up_[s]) continue;
    const auto d = bfs_hops(s);
    for (NodeIndex v = 0; v < n; ++v) {
      if (node_up_[v] && d[v] != std::numeric_limits<std::uint32_t>::max()) {
        best = std::max(best, d[v]);
      }
    }
  }
  return best;
}

}  // namespace rofl::graph
