#!/usr/bin/env python3
"""Run the datapath microbenchmarks and track their trajectory over time.

Stdlib-only driver around build/bench/micro_datapath, which writes
BENCH_datapath.json (see bench/emit_json.hpp).  Three subcommands:

  run      -- execute the bench binary, emit the JSON, and print a summary
              that pairs every *Baseline bench with its flat-datapath
              counterpart and reports the speedup factor.
  compare  -- diff two BENCH_datapath.json files (e.g. from two commits)
              and print per-benchmark deltas.  Exits 1 when any benchmark
              regresses beyond its threshold, so it works as a CI perf gate
              (scripts/check.sh wires it in under ROFL_CHECK_FULL against
              the baseline named by ROFL_BENCH_BASELINE).
  summary  -- re-print the pairing table for an existing JSON file.

compare thresholds: --tolerance sets the default allowed slowdown percent;
per-benchmark overrides come from --thresholds FILE (JSON, see
scripts/bench_thresholds.json: {"default": pct, "overrides": {name: pct}})
and/or repeatable --override NAME=PCT flags (highest precedence).  Override
names match benchmarks by substring, so "SimulatorChurn" covers every sized
variant of that bench.

Typical trajectory workflow:

  python3 scripts/bench_trajectory.py run --out before.json   # at HEAD~1
  python3 scripts/bench_trajectory.py run --out after.json    # at HEAD
  python3 scripts/bench_trajectory.py compare before.json after.json \\
      --thresholds scripts/bench_thresholds.json
"""

import argparse
import json
import os
import subprocess
import sys

DEFAULT_BENCH = os.path.join("build", "bench", "micro_datapath")
DEFAULT_JSON = "BENCH_datapath.json"

# Baseline benches encode their flat counterpart in their name.
BASELINE_REWRITES = [
    ("PriorityQueueBaseline", "Simulator"),
    ("MapBaseline", ""),
]


def load(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if not schema.startswith("rofl-bench"):
        sys.exit(f"{path}: unexpected schema {schema!r}")
    # Sweep-style emitters (churn/faults/shard) carry no per-benchmark
    # timings; treat them as an empty set so a diff degrades gracefully.
    return {name: row["ns_per_op"]
            for name, row in doc.get("benchmarks", {}).items()}


def flat_counterpart(name):
    """Maps a *Baseline bench name to its flat-datapath bench, or None."""
    for marker, replacement in BASELINE_REWRITES:
        if marker in name:
            return name.replace(marker, replacement)
    return None


def print_summary(results):
    rows = []
    for name, ns in sorted(results.items()):
        flat = flat_counterpart(name)
        if flat is None or flat not in results:
            continue
        rows.append((flat, results[flat], name, ns, ns / results[flat]))
    if not rows:
        print("no baseline/flat pairs found")
        return
    width = max(len(r[0]) for r in rows)
    print(f"\n{'flat bench':<{width}}  {'flat ns':>10}  {'baseline ns':>12}  "
          f"{'speedup':>8}")
    for flat, flat_ns, _, base_ns, speedup in rows:
        print(f"{flat:<{width}}  {flat_ns:>10.1f}  {base_ns:>12.1f}  "
              f"{speedup:>7.2f}x")


def cmd_run(args):
    if not os.path.exists(args.bench):
        sys.exit(f"bench binary not found: {args.bench} (build it first)")
    cmd = [args.bench, f"--benchmark_min_time={args.min_time}"]
    if args.filter:
        cmd.append(f"--benchmark_filter={args.filter}")
    env = dict(os.environ, ROFL_BENCH_JSON=args.out)
    subprocess.run(cmd, env=env, check=True)
    print_summary(load(args.out))


def cmd_summary(args):
    print_summary(load(args.json))


def load_thresholds(args):
    """Resolves (default_pct, [(pattern, pct)...]) from flags and the
    optional thresholds file.  --override beats the file, which beats
    --tolerance."""
    default = args.tolerance
    overrides = []
    if args.thresholds:
        with open(args.thresholds) as f:
            doc = json.load(f)
        if not isinstance(doc, dict):
            sys.exit(f"{args.thresholds}: expected a JSON object")
        default = float(doc.get("default", default))
        file_over = doc.get("overrides", {})
        if not isinstance(file_over, dict):
            sys.exit(f"{args.thresholds}: \"overrides\" must be an object")
        overrides.extend((pat, float(pct)) for pat, pct in file_over.items())
    for spec in args.override or []:
        pat, sep, pct = spec.partition("=")
        if not sep or not pat:
            sys.exit(f"bad --override {spec!r} (want NAME=PCT)")
        try:
            overrides.append((pat, float(pct)))
        except ValueError:
            sys.exit(f"bad --override percent in {spec!r}")
    return default, overrides


def threshold_for(name, default, overrides):
    """Last matching override wins (so --override beats the file)."""
    pct = default
    for pat, value in overrides:
        if pat in name:
            pct = value
    return pct


def cmd_compare(args):
    old, new = load(args.old), load(args.new)
    default, overrides = load_thresholds(args)
    names = sorted(set(old) | set(new))
    if not names:
        sys.exit("no benchmarks in either file")
    width = max(len(n) for n in names)
    print(f"{'benchmark':<{width}}  {'old ns':>10}  {'new ns':>10}  "
          f"{'delta':>8}  {'limit':>6}")
    regressions = 0
    for name in names:
        # A bench introduced after the old snapshot was taken is "new", not
        # an error; one that disappeared is "removed".  Neither regresses.
        if name not in old:
            print(f"{name:<{width}}  {'-':>10}  {new[name]:>10.1f}  "
                  f"{'new':>8}")
            continue
        if name not in new:
            print(f"{name:<{width}}  {old[name]:>10.1f}  {'-':>10}  "
                  f"{'removed':>8}")
            continue
        limit = threshold_for(name, default, overrides)
        delta = (new[name] - old[name]) / old[name] * 100.0
        flag = ""
        if delta > limit:
            regressions += 1
            flag = "  <-- regression"
        print(f"{name:<{width}}  {old[name]:>10.1f}  {new[name]:>10.1f}  "
              f"{delta:>+7.1f}%  {limit:>5.0f}%{flag}")
    if regressions:
        print(f"\n{regressions} benchmark(s) regressed beyond their "
              f"threshold")
        sys.exit(1)
    print("\ncompare: no regressions beyond thresholds")


def main():
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="cmd", required=True)

    run = sub.add_parser("run", help="run micro_datapath and summarize")
    run.add_argument("--bench", default=DEFAULT_BENCH)
    run.add_argument("--out", default=DEFAULT_JSON)
    run.add_argument("--filter", default="",
                     help="--benchmark_filter regex passed through")
    run.add_argument("--min-time", default="0.1",
                     help="--benchmark_min_time seconds (default 0.1)")
    run.set_defaults(fn=cmd_run)

    summ = sub.add_parser("summary", help="pairing table for an existing JSON")
    summ.add_argument("json", nargs="?", default=DEFAULT_JSON)
    summ.set_defaults(fn=cmd_summary)

    comp = sub.add_parser("compare", help="diff two BENCH_datapath.json files")
    comp.add_argument("old")
    comp.add_argument("new")
    comp.add_argument("--tolerance", type=float, default=10.0,
                      help="flag regressions beyond this percent (default 10)")
    comp.add_argument("--thresholds", default="",
                      help="JSON file with {\"default\": pct, \"overrides\": "
                           "{name-substring: pct}}")
    comp.add_argument("--override", action="append", metavar="NAME=PCT",
                      help="per-benchmark threshold override (repeatable, "
                           "substring match, beats --thresholds)")
    comp.set_defaults(fn=cmd_compare)

    args = p.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()
