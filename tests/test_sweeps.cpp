// Structural sweeps: behaviors that must hold across topology shapes and
// scales, not just the fixtures the other suites use.
#include <gtest/gtest.h>

#include "interdomain/inter_network.hpp"
#include "rofl/network.hpp"
#include "util/stats.hpp"

namespace rofl {
namespace {

// ---------------------------------------------------------------------------
// Intradomain: join overhead tracks the diameter, not the router count.

struct ScaleParam {
  std::size_t routers;
  std::size_t pops;
};

class IntraScale : public ::testing::TestWithParam<ScaleParam> {};

TEST_P(IntraScale, JoinOverheadBoundedByDiameter) {
  const auto [routers, pops] = GetParam();
  Rng trng(routers * 31 + pops);
  graph::IspParams p;
  p.router_count = routers;
  p.pop_count = pops;
  const auto topo = graph::make_isp_topology(p, trng);
  intra::Network net(&topo, intra::Config{}, routers + 1);
  const auto diameter = topo.graph.diameter_hops(routers);

  SampleSet msgs;
  std::vector<NodeId> ids;
  for (int i = 0; i < 120; ++i) {
    Identity ident = Identity::generate(net.rng());
    const auto gw = static_cast<graph::NodeIndex>(
        net.rng().index(net.router_count()));
    const auto js = net.join_host(ident, gw);
    if (!js.ok) continue;
    ids.push_back(ident.id());
    msgs.add(static_cast<double>(js.messages));
  }
  // The paper's law: overhead ~ c * diameter, c a small constant, however
  // large the network is.
  EXPECT_LT(msgs.mean(), 14.0 * diameter)
      << routers << " routers, diameter " << diameter;
  // And delivery holds everywhere.
  for (int i = 0; i < 60; ++i) {
    const NodeId dest = ids[net.rng().index(ids.size())];
    const auto src = static_cast<graph::NodeIndex>(
        net.rng().index(net.router_count()));
    EXPECT_TRUE(net.route(src, dest).delivered);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, IntraScale,
                         ::testing::Values(ScaleParam{12, 2},
                                           ScaleParam{30, 5},
                                           ScaleParam{80, 10},
                                           ScaleParam{200, 20}));

// ---------------------------------------------------------------------------
// Intradomain: degenerate topologies.

TEST(IntraDegenerate, TwoRouterNetwork) {
  Rng trng(2);
  graph::IspParams p;
  p.router_count = 2;
  p.pop_count = 1;
  const auto topo = graph::make_isp_topology(p, trng);
  intra::Network net(&topo, intra::Config{}, 3);
  std::vector<NodeId> ids;
  for (int i = 0; i < 10; ++i) {
    Identity ident = Identity::generate(net.rng());
    if (net.join_host(ident, static_cast<graph::NodeIndex>(i % 2)).ok) {
      ids.push_back(ident.id());
    }
  }
  std::string err;
  EXPECT_TRUE(net.verify_rings(&err, /*strict=*/true)) << err;
  for (const NodeId& id : ids) {
    EXPECT_TRUE(net.route(0, id).delivered);
    EXPECT_TRUE(net.route(1, id).delivered);
  }
}

TEST(IntraDegenerate, SinglePopStar) {
  // One PoP, mostly access routers: the ring must work on near-star graphs.
  Rng trng(5);
  graph::IspParams p;
  p.router_count = 25;
  p.pop_count = 1;
  p.backbone_fraction = 0.08;  // 2 backbone routers
  const auto topo = graph::make_isp_topology(p, trng);
  intra::Network net(&topo, intra::Config{}, 7);
  std::vector<NodeId> ids;
  for (int i = 0; i < 40; ++i) {
    Identity ident = Identity::generate(net.rng());
    const auto gw = static_cast<graph::NodeIndex>(
        net.rng().index(net.router_count()));
    if (net.join_host(ident, gw).ok) ids.push_back(ident.id());
  }
  std::string err;
  EXPECT_TRUE(net.verify_rings(&err)) << err;
  for (const NodeId& id : ids) EXPECT_TRUE(net.route(3, id).delivered);
}

TEST(IntraDegenerate, RouteFromDownedRouterFails) {
  Rng trng(6);
  graph::IspParams p;
  p.router_count = 20;
  p.pop_count = 4;
  const auto topo = graph::make_isp_topology(p, trng);
  intra::Network net(&topo, intra::Config{}, 8);
  Identity ident = Identity::generate(net.rng());
  ASSERT_TRUE(net.join_host(ident, 3).ok);
  net.map().fail_node(5);
  EXPECT_FALSE(net.route(5, ident.id()).delivered);
}

// ---------------------------------------------------------------------------
// Interdomain: extreme hierarchy shapes.

enum class Shape { kDeepChain, kWideStar, kHeavyMultihoming, kAllPeeringCore };

class InterShape : public ::testing::TestWithParam<Shape> {};

graph::AsTopology make_shape(Shape shape) {
  using graph::AsRel;
  using L = std::tuple<graph::AsIndex, graph::AsIndex, graph::AsRel>;
  std::vector<L> links;
  std::size_t n = 0;
  switch (shape) {
    case Shape::kDeepChain: {
      // 0 <- 1 <- 2 <- ... <- 9: one provider chain, hosts at the tail.
      n = 10;
      for (graph::AsIndex i = 1; i < 10; ++i) {
        links.push_back({i, static_cast<graph::AsIndex>(i - 1),
                         AsRel::kProvider});
      }
      break;
    }
    case Shape::kWideStar: {
      // One provider, twelve stubs.
      n = 13;
      for (graph::AsIndex i = 1; i < 13; ++i) {
        links.push_back({i, 0, AsRel::kProvider});
      }
      break;
    }
    case Shape::kHeavyMultihoming: {
      // Three cores (peered), six stubs each buying from ALL three.
      n = 9;
      links.push_back({0, 1, AsRel::kPeer});
      links.push_back({1, 2, AsRel::kPeer});
      links.push_back({0, 2, AsRel::kPeer});
      for (graph::AsIndex s = 3; s < 9; ++s) {
        for (graph::AsIndex c = 0; c < 3; ++c) {
          links.push_back({s, c, AsRel::kProvider});
        }
      }
      break;
    }
    case Shape::kAllPeeringCore: {
      // Five-way tier-1 clique, one stub under each.
      n = 10;
      for (graph::AsIndex a = 0; a < 5; ++a) {
        for (graph::AsIndex b = static_cast<graph::AsIndex>(a + 1); b < 5; ++b) {
          links.push_back({a, b, AsRel::kPeer});
        }
        links.push_back({static_cast<graph::AsIndex>(a + 5), a,
                         AsRel::kProvider});
      }
      break;
    }
  }
  auto topo = graph::AsTopology::from_links(n, links);
  for (graph::AsIndex a = 0; a < n; ++a) {
    if (topo.is_stub(a)) topo.set_host_count(a, 20);
  }
  return topo;
}

TEST_P(InterShape, JoinsRouteAndIsolate) {
  const auto topo = make_shape(GetParam());
  for (const auto mode :
       {inter::PeeringMode::kVirtualAs, inter::PeeringMode::kBloom}) {
    inter::InterConfig cfg;
    cfg.peering_mode = mode;
    inter::InterNetwork net(&topo, cfg, 77);
    std::vector<NodeId> ids;
    for (graph::AsIndex a = 0; a < topo.as_count(); ++a) {
      if (!topo.is_stub(a)) continue;
      for (int i = 0; i < 4; ++i) {
        Identity ident = Identity::generate(net.rng());
        if (net.join_host(ident, a,
                          inter::JoinStrategy::kRecursiveMultihomed)
                .ok) {
          ids.push_back(ident.id());
        }
      }
    }
    ASSERT_FALSE(ids.empty());
    std::string err;
    EXPECT_TRUE(net.verify_rings(&err)) << err;
    for (const NodeId& dest : ids) {
      for (const NodeId& src_id : ids) {
        const auto src = net.home_of(src_id);
        ASSERT_TRUE(src.has_value());
        const auto rs = net.route(*src, dest);
        EXPECT_TRUE(rs.delivered)
            << "shape " << static_cast<int>(GetParam()) << " mode "
            << static_cast<int>(mode);
        EXPECT_TRUE(rs.isolation_held);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, InterShape,
                         ::testing::Values(Shape::kDeepChain, Shape::kWideStar,
                                           Shape::kHeavyMultihoming,
                                           Shape::kAllPeeringCore));

// ---------------------------------------------------------------------------
// Cache-size monotonicity (the figure-6a law as a property).

class CacheSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheSweep, DeliveryIndependentOfCacheSize) {
  Rng trng(11);
  graph::IspParams p;
  p.router_count = 40;
  p.pop_count = 6;
  const auto topo = graph::make_isp_topology(p, trng);
  intra::Config cfg;
  cfg.cache_capacity = GetParam();
  intra::Network net(&topo, cfg, 13);
  std::vector<NodeId> ids;
  for (int i = 0; i < 80; ++i) {
    Identity ident = Identity::generate(net.rng());
    const auto gw = static_cast<graph::NodeIndex>(
        net.rng().index(net.router_count()));
    if (net.join_host(ident, gw).ok) ids.push_back(ident.id());
  }
  for (const NodeId& id : ids) {
    EXPECT_TRUE(net.route(0, id).delivered);
  }
}

INSTANTIATE_TEST_SUITE_P(Caches, CacheSweep,
                         ::testing::Values(0, 1, 8, 64, 1024, 100000));

}  // namespace
}  // namespace rofl
