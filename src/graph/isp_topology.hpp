// isp_topology.hpp -- Rocketfuel-like router-level ISP topologies.
//
// The paper's intradomain evaluation (section 6.1/6.2) runs over four ISP
// maps measured by Rocketfuel: AS 1221 (318 routers, 2.6M hosts), AS 1239
// (604 routers, 10M hosts), AS 3257 (240 routers, 0.5M hosts) and AS 3967
// (201 routers, 2.1M hosts).  We cannot ship the measured maps, so this
// generator produces topologies with the same router counts and the
// structural features the experiments depend on (see DESIGN.md): a
// PoP-structured two-level design -- backbone routers per PoP connected in a
// sparse inter-PoP mesh, access routers hanging off their PoP's backbone --
// with realistic intra-PoP (sub-millisecond) and inter-PoP (several ms) link
// latencies.  Figure 7 fails whole PoPs, which is why PoP membership is part
// of the model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rofl::graph {

struct IspParams {
  std::string name = "synthetic";
  std::size_t router_count = 100;
  std::size_t pop_count = 10;
  /// Fraction of each PoP's routers that are backbone (vs access) routers.
  double backbone_fraction = 0.3;
  /// Average number of inter-PoP adjacencies per PoP (>=2 keeps the
  /// backbone 2-connected in practice; generator also forces a PoP ring).
  /// Rocketfuel maps are dense (AS1239: 604 routers, ~2268 links), hence
  /// the generous default.
  double inter_pop_degree = 5.0;
  /// Each access router homes to this many backbone routers in its PoP.
  unsigned access_uplinks = 3;
  double intra_pop_latency_ms = 0.3;
  double inter_pop_latency_min_ms = 2.0;
  double inter_pop_latency_max_ms = 15.0;
  /// Estimated host population for the ISP (used to derive how many hosts a
  /// given experiment attaches).
  std::uint64_t host_count = 1'000'000;
};

struct IspTopology {
  std::string name;
  Graph graph;                                  // routers only
  std::vector<std::uint32_t> pop_of;            // router -> PoP id
  std::vector<std::vector<NodeIndex>> pops;     // PoP id -> routers
  std::vector<bool> is_backbone;                // per router
  std::uint64_t host_count = 0;

  [[nodiscard]] std::size_t router_count() const { return graph.node_count(); }
  [[nodiscard]] std::size_t pop_count() const { return pops.size(); }
};

/// Generates a PoP-structured ISP topology.  The result is always connected.
[[nodiscard]] IspTopology make_isp_topology(const IspParams& params, Rng& rng);

/// The four Rocketfuel ISPs the paper simulates.
enum class RocketfuelAs : std::uint16_t {
  kAs1221 = 1221,  // Telstra: 318 routers, 2.6M hosts
  kAs1239 = 1239,  // Sprint: 604 routers, 10M hosts
  kAs3257 = 3257,  // Tiscali: 240 routers, 0.5M hosts
  kAs3967 = 3967,  // Exodus: 201 routers, 2.1M hosts
};

/// Preset parameters matching the paper's four ISPs.
[[nodiscard]] IspParams rocketfuel_params(RocketfuelAs which);

/// Convenience: generate the preset topology directly.
[[nodiscard]] IspTopology make_rocketfuel_like(RocketfuelAs which, Rng& rng);

/// All four presets, in the order the paper lists them.
[[nodiscard]] std::vector<RocketfuelAs> all_rocketfuel_ases();

}  // namespace rofl::graph
