// Unit tests for obs::Timeline (windowed metric sampling) and the engine
// profiler hook: window-delta attribution on the sim clock, ring-capacity
// eviction, commutative merging, shard-count independence of the merged
// timeline, and live counter-track emission into the trace exporter.
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "interdomain/shard_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"

namespace rofl::obs {
namespace {

TEST(Timeline, DegenerateConfigIsSanitizedToDefaults) {
  // Regression: "--timeline-window 0" used to reach the constructor
  // unchecked; a zero-width window makes advance_to close windows forever
  // (and the guarding asserts vanish in Release).  The constructor now
  // repairs non-finite/non-positive widths and a zero capacity back to the
  // documented defaults.
  Registry reg;
  const MetricId c = reg.counter("ops");
  const Timeline::Config defaults;
  for (const double bad :
       {0.0, -5.0, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    Timeline tl(&reg, Timeline::Config{bad, 8, {}});
    EXPECT_EQ(tl.window_ms(), defaults.window_ms);
    reg.add(c, 1);
    tl.flush(10.0);  // must terminate and attribute normally
    ASSERT_GE(tl.size(), 1u);
  }
  Timeline zero_cap(&reg, Timeline::Config{10.0, 0, {}});
  EXPECT_EQ(zero_cap.capacity(), defaults.capacity);
}

TEST(Timeline, DeltasLandInTheWindowContainingTheActivity) {
  Registry reg;
  const MetricId c = reg.counter("ops");
  Timeline tl(&reg, Timeline::Config{10.0, 64, {}});

  reg.add(c, 3);       // before any close: belongs to window 0
  tl.advance_to(25.0); // closes windows 0 and 1
  reg.add(c, 5);       // belongs to window 2
  tl.flush(25.0);      // closes window 2

  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl.window(0).counters[c], 3u);
  EXPECT_EQ(tl.window(1).counters[c], 0u);
  EXPECT_EQ(tl.window(2).counters[c], 5u);
  EXPECT_EQ(tl.counter_series("ops"), (std::vector<std::uint64_t>{3, 0, 5}));
}

TEST(Timeline, BaselineSnapshotExcludesPreCreationActivity) {
  Registry reg;
  const MetricId c = reg.counter("ops");
  reg.add(c, 100);  // setup burst before the timeline attaches

  Timeline tl(&reg, Timeline::Config{10.0, 64, {}});
  reg.add(c, 7);
  tl.flush(0.0);

  ASSERT_EQ(tl.size(), 1u);
  EXPECT_EQ(tl.window(0).counters[c], 7u);  // not 107
}

TEST(Timeline, SimulatorAdvancesWindowsOnTheSimClock) {
  sim::Simulator sim;
  const MetricId c = sim.metrics().counter("work");
  Timeline tl(&sim.metrics(), Timeline::Config{10.0, 64, {}});
  sim.set_timeline(&tl);

  Registry* reg = &sim.metrics();
  sim.schedule_at(5.0, [reg, c] { reg->add(c, 1); });
  sim.schedule_at(15.0, [reg, c] { reg->add(c, 2); });
  sim.schedule_at(35.0, [reg, c] { reg->add(c, 4); });
  sim.run();
  tl.flush(sim.now_ms());

  // Window 0 holds the t=5 add, window 1 the t=15 add, window 3 the t=35
  // add; window 2 closed empty in between.
  ASSERT_EQ(tl.size(), 4u);
  EXPECT_EQ(tl.counter_series("work"),
            (std::vector<std::uint64_t>{1, 2, 0, 4}));
  // The engine's own dispatch counter is windowed the same way.
  EXPECT_EQ(tl.counter_series("sim.events"),
            (std::vector<std::uint64_t>{1, 1, 0, 1}));
  sim.set_timeline(nullptr);
}

TEST(Timeline, RingCapacityEvictsOldestWindows) {
  Registry reg;
  const MetricId c = reg.counter("ops");
  Timeline tl(&reg, Timeline::Config{10.0, 4, {}});

  for (int w = 0; w < 10; ++w) {
    reg.add(c, static_cast<std::uint64_t>(w + 1));
    tl.advance_to((w + 1) * 10.0);  // closes window w
  }

  EXPECT_EQ(tl.size(), 4u);
  EXPECT_EQ(tl.dropped(), 6u);
  EXPECT_EQ(tl.first_index(), 6u);
  EXPECT_EQ(tl.counter_series("ops"),
            (std::vector<std::uint64_t>{7, 8, 9, 10}));
}

TEST(Timeline, GaugesReportValueAtWindowClose) {
  Registry reg;
  const MetricId g = reg.gauge("depth");
  Timeline tl(&reg, Timeline::Config{10.0, 64, {}});

  reg.set(g, 3.0);
  tl.advance_to(10.0);
  reg.set(g, 1.5);
  tl.flush(10.0);

  ASSERT_EQ(tl.size(), 2u);
  EXPECT_DOUBLE_EQ(tl.window(0).gauges[g], 3.0);
  EXPECT_DOUBLE_EQ(tl.window(1).gauges[g], 1.5);
}

TEST(Timeline, HistogramWindowsCarryBucketDeltasAndPercentiles) {
  Registry reg;
  const MetricId h = reg.histogram("hops", std::vector<double>{1.0, 2.0, 4.0});
  Timeline tl(&reg, Timeline::Config{10.0, 64, {}});

  reg.observe(h, 1.0);
  reg.observe(h, 3.0);
  tl.advance_to(10.0);
  reg.observe(h, 99.0);  // overflow bucket
  tl.flush(10.0);

  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl.window(0).hists[h].count, 2u);
  EXPECT_EQ(tl.window(0).hists[h].buckets,
            (std::vector<std::uint64_t>{1, 0, 1, 0}));
  EXPECT_EQ(tl.window(1).hists[h].count, 1u);
  EXPECT_EQ(tl.window(1).hists[h].buckets,
            (std::vector<std::uint64_t>{0, 0, 0, 1}));

  const std::string jsonl = tl.to_jsonl();
  EXPECT_NE(jsonl.find("\"hops\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"p99\""), std::string::npos);
}

TEST(Timeline, MergeIsCommutativeAndGaugesTakeTheMax) {
  Registry r1, r2;
  const MetricId c1 = r1.counter("ops");
  const MetricId g1 = r1.gauge("depth");
  const MetricId c2 = r2.counter("ops");
  const MetricId g2 = r2.gauge("depth");

  Timeline a(&r1, Timeline::Config{10.0, 64, {}});
  Timeline b(&r2, Timeline::Config{10.0, 64, {}});
  r1.add(c1, 3);
  r1.set(g1, 5.0);
  a.flush(0.0);
  r2.add(c2, 4);
  r2.set(g2, 2.0);
  b.flush(15.0);  // b closes windows 0 and 1; a only window 0

  Timeline ab(Timeline::Config{10.0, 64, {}});
  ab.merge_from(a);
  ab.merge_from(b);
  Timeline ba(Timeline::Config{10.0, 64, {}});
  ba.merge_from(b);
  ba.merge_from(a);

  EXPECT_EQ(ab.to_jsonl(), ba.to_jsonl());
  ASSERT_EQ(ab.size(), 2u);
  EXPECT_EQ(ab.window(0).counters[0], 7u);
  EXPECT_DOUBLE_EQ(ab.window(0).gauges[0], 5.0);  // max, not sum
}

TEST(Timeline, MergedTimelineIsShardCountIndependent) {
  const auto run = [](std::uint32_t shards) {
    inter::ScaleParams p;
    p.hosts = 2'000;
    p.duration_ms = 200.0;
    p.shards = shards;
    p.seed = 7;
    p.timeline_window_ms = 20.0;
    p.topo.tier2_count = 6;
    p.topo.tier3_count = 25;
    p.topo.stub_count = 120;
    inter::ShardScaleModel model(p);
    (void)model.run();
    return model.merged_timeline().to_jsonl();
  };

  const std::string one = run(1);
  const std::string two = run(2);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  // The canonical events/sec series is present.
  EXPECT_NE(one.find("\"sim.events\""), std::string::npos);
}

TEST(Timeline, TraceSinkEmitsCounterEventsAtWindowClose) {
  Registry reg;
  const MetricId c = reg.counter("ops");
  (void)reg.counter("quiet");  // zero delta: must not emit a track
  Tracer tracer;
  Timeline tl(&reg, Timeline::Config{10.0, 64, {}});
  tl.set_trace_sink(&tracer, 2);

  reg.add(c, 9);
  tl.flush(0.0);

  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ops\""), std::string::npos);
  EXPECT_EQ(json.find("\"quiet\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 9"), std::string::npos);
}

TEST(Timeline, ExcludedNamesNeverAppearInExports) {
  Registry reg;
  const MetricId wall = reg.counter("spf.recompute_ms.calls");
  const MetricId ok = reg.counter("ops");
  Timeline tl(&reg, Timeline::Config{10.0, 64, {"recompute_ms"}});

  reg.add(wall, 5);
  reg.add(ok, 2);
  tl.flush(0.0);

  const std::string jsonl = tl.to_jsonl();
  EXPECT_EQ(jsonl.find("recompute_ms"), std::string::npos);
  EXPECT_NE(jsonl.find("\"ops\": 2"), std::string::npos);
}

TEST(EngineProfiler, AttributesBusyTimePerKindAndExportsJson) {
  sim::EngineProfiler prof(1);
  prof.set_kind_names({"", "tick", "lookup"});
  sim::EngineProfiler::ShardProfile& p = prof.shard(0);
  p.add_event(1, 0.25);
  p.add_event(2, 0.5);
  p.add_event(2, 0.5);
  p.busy_s = 1.25;
  p.stall_s = 0.5;
  p.idle_s = 0.75;

  EXPECT_EQ(p.events, 3u);
  EXPECT_DOUBLE_EQ(p.busy_frac(), 0.5);
  EXPECT_DOUBLE_EQ(p.stall_frac(), 0.2);

  const std::string json = prof.to_json();
  EXPECT_NE(json.find("\"busy_frac\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"lookup\""), std::string::npos);
  EXPECT_NE(json.find("\"spsc_hwm\""), std::string::npos);
}

TEST(EngineProfiler, SimulatorHookRecordsDispatches) {
  sim::Simulator sim;
  sim::EngineProfiler prof(1);
  sim.set_profiler(&prof);
  int ran = 0;
  sim.schedule_at(1.0, [&ran] { ++ran; });
  sim.schedule_at(2.0, [&ran] { ++ran; });
  sim.run();

  EXPECT_EQ(ran, 2);
  EXPECT_EQ(prof.shard(0).events, 2u);
  EXPECT_GE(prof.shard(0).busy_s, 0.0);
}

}  // namespace
}  // namespace rofl::obs
