// auditor.hpp -- cross-layer invariant auditor (DESIGN.md section 10).
//
// The paper's correctness claim is that greedy ring routing stays consistent
// under continuous churn (sections 3.2-3.4, 6.2).  The fuzz suites only
// check eventual consistency at quiescence; this module asserts the
// cross-layer invariants *mid-run*, on demand or every K simulated
// milliseconds:
//
//   1. successor/predecessor ring integrity and bidirectional agreement per
//      intra::Network (section 2.2);
//   2. every pointer-cache entry and ephemeral backpointer resolves to a
//      live, reachable host via a valid source route (sections 2.2, 3.2);
//   3. interdomain merge-point registrations are consistent with the rings
//      they summarize (section 4.1);
//   4. session-table entries reference live gateways (section 3.2);
//   5. Bloom subtree summaries are sound -- no false negatives (section 4.2).
//
// Violations are graded.  kHard marks state no protocol rule permits at any
// instant: a broken ring order, a cache entry whose source route is
// structurally invalid (LSA purges make route validity synchronous), a bloom
// false negative, a registry entry naming a dead ID.  kSoft marks staleness
// the protocol explicitly tolerates and repairs lazily: a cached pointer to
// an ID that has since departed (reverse-path caching at join makes this
// unavoidable even fault-free -- the directed flood only covers the control
// path of the *joining* side), an ephemeral backpointer whose vnode was
// rehomed (torn down on first use), a session that has not yet noticed its
// ID moved (self-heals on the next tick).  Under an active fault injector
// with message faults enabled, ring agreement and interdomain registration
// checks are additionally downgraded to kSoft: a join reply dropped
// mid-exchange legitimately leaves dangling state that the repair machinery
// absorbs (section 3.2), so only staleness-independent invariants stay hard.
//
// Each violation is stamped with a fresh flight-recorder trace id (when a
// recorder is installed) carrying one kAuditViolation hop record, so a
// failing run can be located on the same timeline as the packets that
// produced it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interdomain/inter_network.hpp"
#include "rofl/network.hpp"
#include "rofl/session.hpp"

namespace rofl::audit {

enum class Severity : std::uint8_t { kHard, kSoft };

[[nodiscard]] std::string_view to_string(Severity s);

struct Violation {
  Severity severity = Severity::kHard;
  /// Dotted check name, e.g. "intra.ring.order" or "inter.bloom.negative".
  std::string check;
  std::string detail;
  /// Flight-recorder trace id carrying the kAuditViolation record (0 when no
  /// recorder is installed).
  std::uint64_t trace_id = 0;
};

struct AuditReport {
  double t_ms = 0.0;
  std::uint64_t audit_index = 0;  // 0-based count of audits this auditor ran
  std::uint64_t checks = 0;       // individual assertions evaluated
  std::vector<Violation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] std::size_t hard_count() const;
  [[nodiscard]] std::size_t soft_count() const;
  /// Multi-line human rendering (one line per violation).
  [[nodiscard]] std::string to_string() const;
};

/// Walks the attached engines and reports every invariant violation.  All
/// traversals iterate deterministically ordered state (router indices,
/// sorted maps), so two same-seed runs produce identical reports.
class Auditor {
 public:
  /// Any subset of engines may be attached; null members are skipped.  At
  /// least one of `net`/`inter` must be non-null.  All attached objects must
  /// outlive the auditor.
  explicit Auditor(intra::Network* net,
                   inter::InterNetwork* inter = nullptr,
                   intra::SessionManager* sessions = nullptr);

  /// Runs one full audit now; the report is appended to reports() and
  /// returned.
  AuditReport run();

  /// Schedules an audit every `interval_ms` of simulated time, from
  /// `interval_ms` up to and including `until_ms`.  Events ride the engine's
  /// own simulator, so audits interleave deterministically with scheduled
  /// faults and churn.
  void schedule_every(double interval_ms, double until_ms);

  [[nodiscard]] const std::vector<AuditReport>& reports() const {
    return reports_;
  }
  [[nodiscard]] std::uint64_t audits_run() const { return audits_run_; }
  [[nodiscard]] std::uint64_t total_hard() const { return total_hard_; }
  [[nodiscard]] std::uint64_t total_soft() const { return total_soft_; }

  /// Deterministic digest of every accumulated report (used by the
  /// determinism gates: two same-seed runs must produce identical digests).
  [[nodiscard]] std::string reports_digest() const;

 private:
  /// True while a fault injector with message faults is active on any
  /// attached engine: churn-racy checks downgrade to kSoft.
  [[nodiscard]] bool lossy() const;

  void add(AuditReport& report, Severity severity, std::string check,
           std::string detail, obs::HopDomain domain, std::uint32_t node,
           const NodeId& subject);

  void check_intra(AuditReport& report);
  void check_intra_ring(AuditReport& report);
  void check_intra_directory(AuditReport& report);
  void check_intra_caches(AuditReport& report);
  void check_intra_ephemerals(AuditReport& report);
  void check_intra_labels(AuditReport& report);
  void check_sessions(AuditReport& report);
  void check_inter(AuditReport& report);

  intra::Network* net_;
  inter::InterNetwork* inter_;
  intra::SessionManager* sessions_;
  std::vector<AuditReport> reports_;
  std::uint64_t audits_run_ = 0;
  std::uint64_t total_hard_ = 0;
  std::uint64_t total_soft_ = 0;
  // Registry counters (registered on the driving simulator's registry).
  obs::MetricId runs_id_ = 0;
  obs::MetricId hard_id_ = 0;
  obs::MetricId soft_id_ = 0;
};

}  // namespace rofl::audit
