// shrink.hpp -- greedy delta-debugging minimizer for churn schedules.
//
// When a churn run trips the invariant auditor, the failing schedule is
// usually hundreds of events of which a handful matter.  shrink_schedule
// applies ddmin-style chunk elimination: starting from half-schedule chunks
// and halving down to single events, it repeatedly deletes any chunk whose
// removal keeps the run failing, until no single event can be removed (or
// the probe budget runs out).  Because every ChurnEvent carries its own
// pre-drawn identity and selector (churn.hpp), replaying a subset is
// deterministic -- the predicate sees exactly the events it was given.
//
// The predicate is arbitrary: "auditor reports a hard violation", "run does
// not reconverge", "delivery drops below X" all work.  The caller seeds the
// network construction inside the predicate, so shrinking never mutates
// shared state.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "audit/churn.hpp"

namespace rofl::audit {

struct ShrinkResult {
  std::vector<ChurnEvent> events;  // smallest failing schedule found
  std::size_t probes = 0;          // predicate evaluations spent
  /// True when the result is 1-minimal: removing any single remaining event
  /// makes the failure disappear.  False when the probe budget ran out
  /// first, or when the full schedule never failed to begin with.
  bool minimal = false;
};

/// Returns true when the (sub)schedule still reproduces the failure.
using FailurePredicate = std::function<bool(const std::vector<ChurnEvent>&)>;

/// Minimizes `events` against `still_fails`.  The input schedule must fail;
/// if it does not, it is returned unchanged with minimal=false after one
/// probe.
[[nodiscard]] ShrinkResult shrink_schedule(std::vector<ChurnEvent> events,
                                           const FailurePredicate& still_fails,
                                           std::size_t max_probes = 2000);

}  // namespace rofl::audit
