// messages.hpp -- typed control-plane messages and their wire codecs.
//
// Every control exchange in the stack (intradomain join walks, pointer
// installs, teardowns, repairs, keepalives, link-state floods, interdomain
// ring merges) constructs one of these structs, encodes it into a
// wire::Packet payload, and the receiver decodes it CRC-verified before any
// state mutation.  Byte counts therefore come out of the real encoder, which
// is what lets the section 6.3 regression pin 1638 bytes / 258 packets for a
// 256-finger single-homed join instead of trusting a formula.
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "util/node_id.hpp"
#include "util/sha256.hpp"
#include "wire/packet.hpp"

namespace rofl::wire::msg {

/// A compressed finger entry as the paper's section 6.3 byte analysis
/// assumes: a 32-bit ID prefix plus the 16-bit home AS, 6 bytes on the wire.
/// (The uncompressed 20-byte FingerField stays available on Packet itself for
/// exchanges that need full IDs.)
struct CompactFinger {
  std::uint32_t target_prefix = 0;
  std::uint16_t home_as = 0;

  friend bool operator==(const CompactFinger&, const CompactFinger&) = default;
};

/// PacketType::kJoinRequest.  Fixed payload part is exactly 48 bytes, so with
/// the 54-byte packet framing and 256 compact fingers the frame is
/// 54 + 48 + 256*6 = 1638 bytes -- the paper's section 6.3 figure.
struct JoinRequest {
  std::uint64_t nonce = 0;
  std::uint32_t gateway = 0;     ///< router the host attaches through
  std::uint8_t host_class = 0;   ///< HostClass of the joiner
  std::uint8_t strategy = 0;     ///< join strategy / flags
  Sha256::Digest public_key{};   ///< self-certifying label preimage
  std::vector<CompactFinger> fingers;

  friend bool operator==(const JoinRequest&, const JoinRequest&) = default;
};

/// PacketType::kJoinReply: the predecessor's answer carrying the successor
/// set the joiner adopts and any ephemeral IDs migrating to it.
struct JoinReply {
  NodeId predecessor;
  std::uint32_t predecessor_host = 0;
  std::vector<FingerField> successors;
  std::vector<NodeId> migrated_ephemerals;

  friend bool operator==(const JoinReply&, const JoinReply&) = default;
};

/// PacketType::kLocate: one step of the greedy predecessor-locate walk.
struct Locate {
  NodeId target;
  std::uint8_t purpose = 0;  ///< 0 join walk, 1 repair re-anchor, 2 probe

  friend bool operator==(const Locate&, const Locate&) = default;
};

/// PacketType::kPointerInstall: install or update a ring pointer on the
/// receiver (successor adoption, predecessor update, refill request).
struct PointerInstall {
  NodeId subject;   ///< the virtual node whose pointer changes
  NodeId neighbor;  ///< the new pointer value
  std::uint32_t neighbor_host = 0;
  std::uint8_t op = 0;  ///< 0 adopt-successor, 1 set-predecessor, 2 refill

  friend bool operator==(const PointerInstall&, const PointerInstall&) =
      default;
};

/// PacketType::kTeardown: explicit removal of an ID from the ring.
struct Teardown {
  NodeId id;
  std::uint8_t reason = 0;  ///< 0 host-fail, 1 leave, 2 stale, 3 ephemeral

  friend bool operator==(const Teardown&, const Teardown&) = default;
};

/// PacketType::kRepair: post-failure pointer surgery.
struct Repair {
  NodeId subject;
  NodeId neighbor;
  std::uint32_t neighbor_host = 0;
  std::uint8_t op = 0;  ///< 0 successor-set, 1 predecessor-set, 2 re-anchor

  friend bool operator==(const Repair&, const Repair&) = default;
};

/// PacketType::kKeepalive: session liveness probe (section 5.3 soft state).
struct Keepalive {
  std::uint64_t seq = 0;

  friend bool operator==(const Keepalive&, const Keepalive&) = default;
};

/// PacketType::kLsa: one link-state advertisement as flooded on a topology
/// event (OSPF-substrate analogue the intradomain design assumes).
struct Lsa {
  std::uint32_t origin = 0;
  std::uint64_t version = 0;
  std::uint8_t event = 0;  ///< TopologyEvent kind; 255 = piggybacked/other
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  friend bool operator==(const Lsa&, const Lsa&) = default;
};

/// PacketType::kRingMerge: interdomain Canon-style merge traffic -- register
/// or deregister an ID at an anchor AS for a given merge level.
struct RingMerge {
  NodeId id;
  std::uint32_t home_as = 0;
  std::uint32_t anchor_as = 0;
  std::uint16_t level = 0;
  std::uint8_t op = 0;  ///< 0 register, 1 deregister, 2 lookup

  friend bool operator==(const RingMerge&, const RingMerge&) = default;
};

/// PacketType::kLabelInstall: install one hop of a label-switched fast path
/// along a stabilized pointer path (DESIGN.md section 15).  The receiver maps
/// `label` -> {out-pointer `out`, next-hop label `next_label`} for flows
/// toward `dest`.
struct LabelInstall {
  NodeId dest;                    ///< flow destination the label chain serves
  std::uint32_t label = 0;        ///< label the receiver switches on
  std::uint32_t next_label = 0;   ///< label to emit downstream (or sentinel)
  std::uint32_t out = 0;          ///< next-hop router for this label
  std::uint8_t op = 0;            ///< 0 install, 1 refresh

  friend bool operator==(const LabelInstall&, const LabelInstall&) = default;
};

/// PacketType::kLabelTeardown: retire one hop of a label chain when its
/// pointer path dies (churn, leave, crash) or the ingress stops the flow.
struct LabelTeardown {
  NodeId dest;
  std::uint32_t label = 0;
  std::uint8_t reason = 0;  ///< 0 churn-invalidate, 1 dest-gone, 2 ingress

  friend bool operator==(const LabelTeardown&, const LabelTeardown&) = default;
};

using ControlMessage = std::variant<JoinRequest, JoinReply, Locate,
                                    PointerInstall, Teardown, Repair,
                                    Keepalive, Lsa, RingMerge, LabelInstall,
                                    LabelTeardown>;

/// The PacketType a given message encodes under.
[[nodiscard]] PacketType type_of(const ControlMessage& m);

/// Encodes `m` into a complete wire frame (packet header + typed payload +
/// CRC-32 trailer).  Returns an empty vector when any count exceeds its u16
/// wire limit -- the same explicit-failure contract as Packet::encode();
/// callers must check and never transmit a zero-byte frame.
[[nodiscard]] std::vector<std::uint8_t> encode_control(
    const ControlMessage& m, const NodeId& src, const NodeId& dst,
    std::uint64_t trace_id = 0);

/// Decodes a frame produced by encode_control: Packet::decode (CRC verified)
/// followed by the per-type payload codec.  Returns nullopt on any
/// corruption, truncation, unknown type, or trailing payload bytes.
[[nodiscard]] std::optional<ControlMessage> decode_control(
    std::span<const std::uint8_t> frame);

/// Exact frame size encode_control would produce, without materializing it.
/// Used on the data path and in bulk accounting where the bytes themselves
/// are not needed.
[[nodiscard]] std::size_t control_wire_size(const ControlMessage& m);

}  // namespace rofl::wire::msg
