// rng.hpp -- deterministic random source for reproducible simulations.
//
// Every stochastic choice in the library (topology generation, ID assignment,
// workload sampling) flows through an explicitly-seeded Rng so that a given
// seed reproduces a run bit-for-bit; benches print their seeds.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace rofl {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). Requires bound > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  [[nodiscard]] std::uint64_t next_u64() {
    return std::uniform_int_distribution<std::uint64_t>()(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Picks a uniformly random element index of a non-empty container size.
  [[nodiscard]] std::size_t index(std::size_t size) {
    return static_cast<std::size_t>(below(size));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derives an independent child RNG (for parallel sub-experiments).
  [[nodiscard]] Rng fork() { return Rng(next_u64() ^ 0x9E3779B97F4A7C15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf(s) sampler over ranks {1..n}: heavy-tailed per-AS host populations
/// (our stand-in for the CAIDA skitter host-count estimates, see DESIGN.md).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [0, n) with P(rank k) proportional to 1/(k+1)^s.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k.
  [[nodiscard]] double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace rofl
