#include "util/bloom.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rofl {
namespace {

TEST(Bloom, NoFalseNegatives) {
  BloomFilter bf(1024, 4);
  Rng rng(3);
  std::vector<NodeId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(NodeId(rng.next_u64(), rng.next_u64()));
    bf.insert(ids.back());
  }
  for (const NodeId& id : ids) EXPECT_TRUE(bf.may_contain(id));
}

TEST(Bloom, EmptyContainsNothing) {
  BloomFilter bf(256, 3);
  EXPECT_FALSE(bf.may_contain(NodeId::from_u64(1)));
  EXPECT_FALSE(bf.may_contain(NodeId::from_u64(0)));
}

TEST(Bloom, ForCapacityMeetsTargetFpRate) {
  const double target = 0.01;
  BloomFilter bf = BloomFilter::for_capacity(10'000, target);
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    bf.insert(NodeId(rng.next_u64(), rng.next_u64()));
  }
  // Measure the empirical false-positive rate on fresh IDs.
  int fp = 0;
  const int probes = 20'000;
  for (int i = 0; i < probes; ++i) {
    if (bf.may_contain(NodeId(rng.next_u64(), rng.next_u64()))) ++fp;
  }
  const double measured = static_cast<double>(fp) / probes;
  EXPECT_LT(measured, target * 3.0);  // generous margin for variance
  EXPECT_NEAR(bf.estimated_fp_rate(), measured, 0.02);
}

TEST(Bloom, MergeUnionsMembership) {
  BloomFilter a(512, 4);
  BloomFilter b(512, 4);
  a.insert(NodeId::from_u64(1));
  b.insert(NodeId::from_u64(2));
  ASSERT_TRUE(a.merge(b));
  EXPECT_TRUE(a.may_contain(NodeId::from_u64(1)));
  EXPECT_TRUE(a.may_contain(NodeId::from_u64(2)));
}

TEST(Bloom, MergeRejectsMismatchedGeometry) {
  BloomFilter a(512, 4);
  BloomFilter b(256, 4);
  BloomFilter c(512, 3);
  EXPECT_FALSE(a.merge(b));
  EXPECT_FALSE(a.merge(c));
}

TEST(Bloom, ClearResets) {
  BloomFilter bf(512, 4);
  bf.insert(NodeId::from_u64(5));
  bf.clear();
  EXPECT_FALSE(bf.may_contain(NodeId::from_u64(5)));
  EXPECT_EQ(bf.inserted_count(), 0u);
  EXPECT_EQ(bf.fill_ratio(), 0.0);
}

TEST(Bloom, FillRatioGrowsWithInsertions) {
  BloomFilter bf(1024, 4);
  const double before = bf.fill_ratio();
  Rng rng(5);
  for (int i = 0; i < 100; ++i) bf.insert(NodeId(rng.next_u64(), rng.next_u64()));
  EXPECT_GT(bf.fill_ratio(), before);
  EXPECT_LE(bf.fill_ratio(), 1.0);
}

// Parameterized sweep: the analytic m/k sizing keeps measured FP rate within
// a small factor of the target across capacities.
class BloomSizing : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BloomSizing, SizedFilterHoldsTarget) {
  const std::size_t n = GetParam();
  BloomFilter bf = BloomFilter::for_capacity(n, 0.02);
  Rng rng(n);
  for (std::size_t i = 0; i < n; ++i) {
    bf.insert(NodeId(rng.next_u64(), rng.next_u64()));
  }
  int fp = 0;
  const int probes = 5000;
  for (int i = 0; i < probes; ++i) {
    if (bf.may_contain(NodeId(rng.next_u64(), rng.next_u64()))) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.08) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Capacities, BloomSizing,
                         ::testing::Values(100, 1'000, 10'000, 50'000));

}  // namespace
}  // namespace rofl
