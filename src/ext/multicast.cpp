#include "ext/multicast.hpp"

#include <deque>

namespace rofl::ext {

void MulticastGroup::paint(graph::NodeIndex a, graph::NodeIndex b) {
  adj_[a].insert(b);
  adj_[b].insert(a);
}

MulticastGroup::JoinStats MulticastGroup::join(intra::Network& net,
                                               graph::NodeIndex gateway,
                                               std::uint32_t suffix) {
  JoinStats stats;
  if (gateway >= net.router_count() ||
      !net.topology().graph.node_up(gateway)) {
    return stats;
  }
  if (members_.contains(gateway)) {
    stats.ok = true;  // another local host; tree unchanged
    return stats;
  }
  if (members_.empty()) {
    // First member: seed the tree and register the group in the ring so the
    // anycast joins of later members can find a nearby branch.
    const intra::JoinStats js = anycast_join(net, group_, suffix, gateway);
    if (!js.ok) return stats;
    seed_suffix_ = suffix;
    stats.messages = js.messages;
    members_.insert(gateway);
    adj_[gateway];
    stats.ok = true;
    return stats;
  }
  // Anycast toward a nearby member (or, in single-source mode, route
  // straight toward the source -- section 5.2's "more efficient tree"),
  // painting back-pointers along the path; stop early when the walk
  // intersects an existing branch.
  AnycastResult walk;
  if (source_.has_value()) {
    walk.path = net.map().path(gateway, *source_);
    walk.delivered = !walk.path.empty();
    if (walk.delivered) {
      walk.physical_hops = static_cast<std::uint32_t>(walk.path.size() - 1);
      net.simulator().counters().add(sim::MsgCategory::kControl,
                                     walk.physical_hops);
    }
  } else {
    walk = anycast_route(net, gateway, group_);
  }
  if (!walk.delivered && walk.path.size() < 2) {
    // Degenerate: walk could not even leave the gateway.
    if (!walk.delivered) return stats;
  }
  graph::NodeIndex prev = walk.path.front();
  bool intersected = false;
  std::uint64_t painted = 0;
  for (std::size_t i = 1; i < walk.path.size(); ++i) {
    const graph::NodeIndex cur = walk.path[i];
    if (adj_.contains(cur) || members_.contains(cur)) {
      paint(prev, cur);
      ++painted;
      intersected = true;
      break;
    }
    paint(prev, cur);
    ++painted;
    prev = cur;
  }
  if (!intersected && !walk.delivered) return stats;
  members_.insert(gateway);
  adj_[gateway];
  stats.ok = true;
  stats.intersected_tree = intersected;
  stats.messages = painted;
  net.simulator().counters().add(sim::MsgCategory::kControl, painted);
  return stats;
}

void MulticastGroup::leave(intra::Network& net, graph::NodeIndex gateway) {
  (void)net;
  members_.erase(gateway);
  // Prune dangling non-member leaves repeatedly.
  bool pruned = true;
  while (pruned) {
    pruned = false;
    for (auto it = adj_.begin(); it != adj_.end();) {
      if (!members_.contains(it->first) && it->second.size() <= 1) {
        if (it->second.size() == 1) {
          adj_[*it->second.begin()].erase(it->first);
        }
        it = adj_.erase(it);
        pruned = true;
      } else {
        ++it;
      }
    }
  }
}

MulticastGroup::SendStats MulticastGroup::send(
    intra::Network& net, graph::NodeIndex from_gateway) const {
  SendStats stats;
  if (!members_.contains(from_gateway)) return stats;
  if (members_.contains(from_gateway)) stats.members_reached = 1;
  // Flood along the tree: forward out every painted link except the arrival
  // link.
  std::deque<std::pair<graph::NodeIndex, graph::NodeIndex>> frontier;
  frontier.emplace_back(from_gateway, graph::kInvalidNode);
  std::set<graph::NodeIndex> seen{from_gateway};
  while (!frontier.empty()) {
    const auto [cur, from] = frontier.front();
    frontier.pop_front();
    const auto it = adj_.find(cur);
    if (it == adj_.end()) continue;
    for (const graph::NodeIndex next : it->second) {
      if (next == from || seen.contains(next)) continue;
      seen.insert(next);
      ++stats.copies;
      net.simulator().counters().add(sim::MsgCategory::kData, 1);
      if (members_.contains(next)) ++stats.members_reached;
      frontier.emplace_back(next, cur);
    }
  }
  return stats;
}

bool MulticastGroup::verify_tree() const {
  if (adj_.empty()) return members_.empty();
  // All members present as tree routers.
  for (const graph::NodeIndex m : members_) {
    if (!adj_.contains(m)) return false;
  }
  // Connected and acyclic: edges == nodes - 1 and one BFS covers all.
  std::size_t edge_halves = 0;
  for (const auto& [r, nbrs] : adj_) edge_halves += nbrs.size();
  const std::size_t edges = edge_halves / 2;
  if (edges + 1 != adj_.size()) return false;
  std::set<graph::NodeIndex> seen;
  std::deque<graph::NodeIndex> frontier{adj_.begin()->first};
  seen.insert(adj_.begin()->first);
  while (!frontier.empty()) {
    const graph::NodeIndex cur = frontier.front();
    frontier.pop_front();
    for (const graph::NodeIndex next : adj_.at(cur)) {
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return seen.size() == adj_.size();
}

}  // namespace rofl::ext
