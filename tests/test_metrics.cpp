// Unit tests for the observability metrics layer (src/obs): histogram
// bucket/percentile math cross-checked against util::SampleSet on the same
// samples, registry id stability and export, and the trace-event exporter's
// format invariants.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "obs/trace_export.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rofl::obs {
namespace {

// -- histogram --------------------------------------------------------------

TEST(Histogram, BucketBoundariesAreUpperInclusive) {
  Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 finite + overflow

  h.record(0.5);   // <= 1         -> bucket 0
  h.record(1.0);   // == bound[0]  -> bucket 0 (upper-inclusive)
  h.record(1.001); // (1, 2]       -> bucket 1
  h.record(2.0);   // == bound[1]  -> bucket 1
  h.record(4.0);   // == bound[2]  -> bucket 2
  h.record(4.001); // > last bound -> overflow

  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 6u);
}

TEST(Histogram, OverflowBucketReportsObservedMaxNotAFictitiousBound) {
  Histogram h(std::vector<double>{10.0});
  h.record(100.0);
  h.record(250.0);
  h.record(400.0);
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.bucket(1), 3u);
  // Every rank lands in the unbounded overflow bucket; percentile must stay
  // clamped to the observed range rather than inventing a finite bound.
  EXPECT_GE(h.percentile(0.0), 100.0);
  EXPECT_LE(h.percentile(0.5), 400.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 400.0);
  EXPECT_DOUBLE_EQ(h.max(), 400.0);
  EXPECT_DOUBLE_EQ(h.min(), 100.0);
}

TEST(Histogram, EmptyHistogramIsAllZeros) {
  Histogram h(Histogram::linear_bounds(1.0, 1.0, 4));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(2.0), 0.0);
}

TEST(Histogram, BoundGeneratorsProduceAscendingBounds) {
  const auto lin = Histogram::linear_bounds(2.0, 3.0, 5);
  ASSERT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin.front(), 2.0);
  EXPECT_DOUBLE_EQ(lin.back(), 14.0);
  const auto exp = Histogram::exponential_bounds(0.5, 2.0, 6);
  ASSERT_EQ(exp.size(), 6u);
  EXPECT_DOUBLE_EQ(exp.front(), 0.5);
  EXPECT_DOUBLE_EQ(exp.back(), 16.0);
  for (std::size_t i = 1; i < exp.size(); ++i) EXPECT_GT(exp[i], exp[i - 1]);
}

TEST(Histogram, CdfAgreesWithSampleSetAtEveryBucketBoundary) {
  // Upper-inclusive buckets exist precisely so the histogram CDF matches the
  // empirical CDF at boundaries: both count |{v : v <= bound}|.
  Histogram h(Histogram::linear_bounds(5.0, 5.0, 20));  // 5,10,...,100
  SampleSet s;
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    // A mix of smooth values and values sitting exactly on boundaries.
    const double v = (i % 7 == 0)
                         ? 5.0 * static_cast<double>(1 + rng.index(20))
                         : rng.uniform() * 110.0;
    h.record(v);
    s.add(v);
  }
  for (const double bound : h.bounds()) {
    EXPECT_DOUBLE_EQ(h.cdf_at(bound), s.cdf_at(bound)) << "at " << bound;
  }
  EXPECT_DOUBLE_EQ(h.min(), s.min());
  EXPECT_DOUBLE_EQ(h.max(), s.max());
  // Sums accumulate in different orders (SampleSet may sum sorted samples),
  // so compare with a relative tolerance rather than bit-exactly.
  EXPECT_NEAR(h.sum(), s.sum(), 1e-9 * s.sum());
  EXPECT_EQ(h.count(), s.count());
}

TEST(Histogram, PercentilesTrackSampleSetWithinOneBucketWidth) {
  // The histogram only retains bucket counts, so its percentile can drift
  // from the exact nearest-rank answer by at most one bucket span (plus the
  // clamp at the extremes).
  constexpr double kBucket = 2.0;
  Histogram h(Histogram::linear_bounds(kBucket, kBucket, 50));  // 2..100
  SampleSet s;
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.uniform() * 100.0;
    h.record(v);
    s.add(v);
  }
  for (const double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_NEAR(h.percentile(p), s.percentile(p), kBucket) << "p=" << p;
  }
}

TEST(Histogram, ResetClearsCountsButKeepsBounds) {
  Histogram h(std::vector<double>{1.0, 2.0});
  h.record(0.5);
  h.record(3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket_count(), 3u);
  h.record(1.5);
  EXPECT_EQ(h.bucket(1), 1u);
}

// -- registry ---------------------------------------------------------------

TEST(Registry, RegistrationIsGetOrCreateAndIdsAreDense) {
  Registry r;
  const MetricId a = r.counter("a");
  const MetricId b = r.counter("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(r.counter("a"), a);  // re-registration returns the same id
  EXPECT_EQ(r.counter_count(), 2u);

  const MetricId h1 = r.histogram("h", Histogram::linear_bounds(1, 1, 4));
  const MetricId h2 = r.histogram("h", Histogram::linear_bounds(99, 1, 2));
  EXPECT_EQ(h1, h2);  // first registration's bounds win
  EXPECT_EQ(r.histogram_at(h1).bucket_count(), 5u);
}

TEST(Registry, IdsAreIdenticalAcrossIdenticallyBuiltRegistries) {
  // Seeded-run determinism leans on this: two simulations registering the
  // same names in the same order agree on every id.
  Registry r1, r2;
  for (const char* name : {"x", "y", "z"}) {
    EXPECT_EQ(r1.counter(name), r2.counter(name));
  }
}

TEST(Registry, RecordingAndReadback) {
  Registry r;
  const MetricId c = r.counter("pkts");
  const MetricId g = r.gauge("depth");
  const MetricId h = r.histogram("lat", std::vector<double>{1.0, 10.0});
  r.add(c);
  r.add(c, 4);
  r.set(g, 2.5);
  r.observe(h, 0.5);
  r.observe(h, 99.0);
  EXPECT_EQ(r.counter_value(c), 5u);
  EXPECT_DOUBLE_EQ(r.gauge_value(g), 2.5);
  EXPECT_EQ(r.histogram_at(h).count(), 2u);
  EXPECT_EQ(r.counter_name(c), "pkts");

  r.reset();
  EXPECT_EQ(r.counter_value(c), 0u);
  EXPECT_DOUBLE_EQ(r.gauge_value(g), 0.0);
  EXPECT_EQ(r.histogram_at(h).count(), 0u);
  EXPECT_EQ(r.counter_count(), 1u);  // names/ids survive reset
}

TEST(Registry, JsonAndTableExportContainEveryMetric) {
  Registry r;
  r.add(r.counter("msgs.join"), 7);
  r.set(r.gauge("ring.size"), 42.0);
  r.observe(r.histogram("spf.ms", std::vector<double>{1.0}), 0.25);

  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"msgs.join\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"ring.size\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"spf.ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  std::ostringstream table;
  r.print_table(table);
  EXPECT_NE(table.str().find("msgs.join = 7"), std::string::npos);
  EXPECT_NE(table.str().find("spf.ms:"), std::string::npos);
}

// -- merge edge cases --------------------------------------------------------

TEST(Histogram, MergeFromRejectsMismatchedBoundsWithoutMutating) {
  Histogram target(std::vector<double>{1.0, 2.0, 4.0});
  Histogram other(std::vector<double>{1.0, 3.0, 9.0});
  target.record(1.5);
  other.record(2.5);

  EXPECT_FALSE(target.merge_from(other));
  // The rejected merge must be a no-op: the target keeps exactly its own
  // samples (a partial fold would silently corrupt merged exports).
  EXPECT_EQ(target.count(), 1u);
  EXPECT_DOUBLE_EQ(target.sum(), 1.5);
  EXPECT_EQ(target.bucket(1), 1u);  // (1, 2]
  EXPECT_EQ(target.bucket(2), 0u);
}

TEST(Histogram, MergeFromAddsOverflowBuckets) {
  Histogram a(std::vector<double>{1.0, 2.0});
  Histogram b(std::vector<double>{1.0, 2.0});
  a.record(100.0);  // overflow
  b.record(50.0);   // overflow
  b.record(0.5);    // bucket 0

  EXPECT_TRUE(a.merge_from(b));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.bucket(2), 2u);  // overflow bucket is summed, not dropped
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
}

TEST(Registry, MergeFromAddsHistogramsBucketwise) {
  Registry r1, r2;
  const MetricId h1 = r1.histogram("lat", std::vector<double>{1.0, 2.0});
  const MetricId h2 = r2.histogram("lat", std::vector<double>{1.0, 2.0});
  r1.observe(h1, 0.5);
  r2.observe(h2, 1.5);
  r2.observe(h2, 9.0);

  r1.merge_from(r2);
  EXPECT_EQ(r1.histogram_at(h1).count(), 3u);
  EXPECT_EQ(r1.histogram_at(h1).bucket(0), 1u);
  EXPECT_EQ(r1.histogram_at(h1).bucket(1), 1u);
  EXPECT_EQ(r1.histogram_at(h1).bucket(2), 1u);
}

TEST(Registry, ToJsonWithBucketsEmitsBoundsAndCounts) {
  Registry r;
  const MetricId h = r.histogram("lat", std::vector<double>{1.0, 2.0});
  r.observe(h, 0.5);
  r.observe(h, 9.0);

  const std::string plain = r.to_json();
  EXPECT_EQ(plain.find("\"bounds\""), std::string::npos);

  const std::string with = r.to_json(0, /*with_buckets=*/true);
  EXPECT_NE(with.find("\"bounds\": [1, 2]"), std::string::npos);
  // One count per finite bucket plus the trailing overflow entry.
  EXPECT_NE(with.find("\"buckets\": [1, 0, 1]"), std::string::npos);
}

// -- trace exporter ---------------------------------------------------------

TEST(Tracer, TimestampsAreClampedNonDecreasing) {
  Tracer t;
  t.complete("a", "sim", 10.0, 5.0);
  t.instant("b", "sim", 4.0);  // earlier than the last event: clamped to 10
  t.complete("c", "sim", 12.0, -3.0);  // negative duration: clamped to 0
  const std::string json = t.to_json();
  EXPECT_EQ(json.find("\"ts\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 0"), std::string::npos);
  EXPECT_EQ(t.event_count(), 3u);
}

TEST(Tracer, JsonCarriesArgsTracksAndMetadata) {
  Tracer t;
  t.name_track(2, "rofl-intra");
  t.instant("join", "rofl", 1.0, /*track=*/2,
            {TraceArg{"messages", std::uint64_t{12}},
             TraceArg{"note", std::string("he said \"hi\"")}});
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"messages\": 12"), std::string::npos);
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);  // escaped quote

  t.clear();
  EXPECT_EQ(t.event_count(), 0u);
}

}  // namespace
}  // namespace rofl::obs
