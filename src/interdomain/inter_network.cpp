#include "interdomain/inter_network.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace rofl::inter {
namespace {

constexpr NodeId max_distance() {
  return NodeId{}.minus(NodeId::from_u64(1));
}

}  // namespace

InterNetwork::InterNetwork(const graph::AsTopology* base, InterConfig cfg,
                           std::uint64_t seed)
    : base_(base), base_copy_(*base), cfg_(cfg), rng_(seed) {
  assert(base != nullptr);
  if (cfg_.peering_mode == PeeringMode::kVirtualAs) {
    work_ = base_copy_.with_virtual_peering_ases();
  } else {
    work_ = base_copy_;
  }
  nodes_.resize(work_.as_count());
  routes_id_ = sim_.metrics().counter("inter.routes");
  delivered_id_ = sim_.metrics().counter("inter.routes.delivered");
  peer_crossings_id_ = sim_.metrics().counter("inter.peer_crossings");
  backtracks_id_ = sim_.metrics().counter("inter.backtracks");
  probes_id_ = sim_.metrics().counter("inter.escalation_probes");
  encode_failures_id_ = sim_.metrics().counter("inter.encode_failures");
  codec_rejected_id_ = sim_.metrics().counter("inter.codec_rejected");
  data_frame_bytes_ = wire::Packet{}.wire_size();
  // Subtree bloom filters: required for the bloom peering rule and for
  // guarding pointer caches; build them whenever either feature is on.
  if (cfg_.peering_mode == PeeringMode::kBloom ||
      cfg_.cache_capacity_per_as > 0) {
    for (auto& n : nodes_) {
      n.subtree_bloom =
          std::make_unique<BloomFilter>(cfg_.bloom_bits, cfg_.bloom_hashes);
    }
  }
}

void InterNetwork::set_shard_map(std::vector<std::uint32_t> map) {
  shard_map_ = std::move(map);
  if (!shard_map_.empty()) {
    shard_cross_msgs_id_ = sim_.metrics().counter("shards.cross_msgs");
    shard_cross_bytes_id_ = sim_.metrics().counter("shards.cross_bytes");
  }
}

// ---------------------------------------------------------------------------
// ancestor masks

void InterNetwork::rebuild_ancestor_masks() const {
  const std::size_t n = work_.as_count();
  const std::size_t stride = (n + 63) / 64;
  ancestor_masks_.assign(n * stride, 0);
  for (AsIndex des = 0; des < n; ++des) {
    if (!work_.as_up(des)) continue;
    // Backup providers are excluded: joins do not register across backup
    // links (section 4.2), so subtree membership must not use them either.
    const auto g = work_.up_hierarchy(des, /*include_backup=*/false);
    for (const AsIndex anc : g.nodes) {
      ancestor_masks_[static_cast<std::size_t>(anc) * stride + des / 64] |=
          (1ull << (des % 64));
    }
  }
  masks_valid_ = true;
}

bool InterNetwork::is_ancestor(AsIndex anc, AsIndex des) const {
  if (anc == des) return true;
  if (!masks_valid_) rebuild_ancestor_masks();
  const std::size_t n = work_.as_count();
  const std::size_t stride = (n + 63) / 64;
  return (ancestor_masks_[static_cast<std::size_t>(anc) * stride + des / 64] >>
          (des % 64)) & 1u;
}

// ---------------------------------------------------------------------------
// anchor selection

std::vector<InterNetwork::Anchor> InterNetwork::anchors_for(
    AsIndex home, JoinStrategy strategy,
    std::optional<AsIndex> via_provider) const {
  std::vector<Anchor> out;
  const auto up = work_.up_hierarchy(home);
  if (up.nodes.empty()) return out;

  auto top_anchor = [&]() -> Anchor {
    // The global ring's root: a hierarchy member with no live providers
    // (the tier-1 virtual AS in the converted topology).  A mere
    // max-BFS-level pick can land on a mid-level peering-clique virtual AS
    // that happens to sit at the same depth, which would strand the ID in
    // a tiny non-global ring.
    std::optional<Anchor> root;
    Anchor fallback{up.nodes.front(), 0};
    for (const AsIndex a : up.nodes) {
      const unsigned lvl = up.level.at(a);
      if (lvl > fallback.level) fallback = Anchor{a, lvl};
      const auto provs = work_.providers(a);
      const bool is_root = std::none_of(
          provs.begin(), provs.end(), [&](AsIndex p) {
            return work_.as_up(p) && work_.link_up(a, p);
          });
      if (!is_root) continue;
      if (!root.has_value() || lvl > root->level ||
          (lvl == root->level && work_.is_virtual(a) &&
           !work_.is_virtual(root->as))) {
        root = Anchor{a, lvl};
      }
    }
    return root.value_or(fallback);
  };

  switch (strategy) {
    case JoinStrategy::kEphemeral:
      // Global successor only (section 6.3, "ephemeral" joining strategy).
      out.push_back(top_anchor());
      break;
    case JoinStrategy::kSingleHomed: {
      // One path toward the core: the internal ring plus a deterministic
      // primary-provider chain.
      AsIndex cur = home;
      unsigned lvl = 0;
      out.push_back(Anchor{cur, lvl});
      while (true) {
        const auto provs = work_.providers(cur);
        AsIndex next = graph::kInvalidAs;
        // Forced first hop (multi-address multihoming / TE suffixes).
        if (lvl == 0 && via_provider.has_value()) {
          if (work_.as_up(*via_provider) && work_.link_up(cur, *via_provider) &&
              work_.relationship(cur, *via_provider) ==
                  graph::AsRel::kProvider) {
            ++lvl;
            out.push_back(Anchor{*via_provider, lvl});
            cur = *via_provider;
            continue;
          }
        }
        for (const AsIndex p : provs) {
          if (!work_.as_up(p) || !work_.link_up(cur, p)) continue;
          // Prefer real providers; fall back to a virtual AS (the peering
          // clique) to reach the global ring from the top tier.
          if (next == graph::kInvalidAs) next = p;
          if (!work_.is_virtual(p) && work_.is_virtual(next)) next = p;
          if (!work_.is_virtual(p) && p < next && !work_.is_virtual(next)) {
            next = p;
          }
        }
        if (next == graph::kInvalidAs) break;
        ++lvl;
        out.push_back(Anchor{next, lvl});
        cur = next;
      }
      break;
    }
    case JoinStrategy::kRecursiveMultihomed:
      // All ASes above in the topology, excluding joins across peering
      // links (virtual ASes) -- except top-level virtual ASes, without
      // which the rings of different tier-1 subtrees would never merge.
      for (const AsIndex a : up.nodes) {
        const bool top_virtual =
            work_.is_virtual(a) && work_.providers(a).empty();
        if (work_.is_virtual(a) && !top_virtual) continue;
        out.push_back(Anchor{a, up.level.at(a)});
      }
      break;
    case JoinStrategy::kPeering:
      // Joins across all adjacent peering links too: every member of the
      // converted up-hierarchy.  Under the bloom peering mode this
      // deliberately degenerates to the multihomed join (the optimization
      // the paper reports in figure 8a).
      for (const AsIndex a : up.nodes) {
        out.push_back(Anchor{a, up.level.at(a)});
      }
      break;
  }
  std::sort(out.begin(), out.end(), [](const Anchor& a, const Anchor& b) {
    if (a.level != b.level) return a.level < b.level;
    return a.as < b.as;
  });
  return out;
}

// ---------------------------------------------------------------------------
// ring registries

std::optional<std::pair<NodeId, AsIndex>> InterNetwork::ring_succ(
    AsIndex anchor, const NodeId& id) const {
  const auto& ring = nodes_[anchor].ring;
  if (ring.empty()) return std::nullopt;
  auto it = ring.upper_bound(id);
  if (it == ring.end()) it = ring.begin();
  if (it->first == id) {
    ++it;
    if (it == ring.end()) it = ring.begin();
  }
  if (it->first == id) return std::nullopt;  // only us
  return std::make_pair(it->first, it->second);
}

std::optional<std::pair<NodeId, AsIndex>> InterNetwork::ring_pred(
    AsIndex anchor, const NodeId& id) const {
  const auto& ring = nodes_[anchor].ring;
  if (ring.empty()) return std::nullopt;
  auto it = ring.lower_bound(id);
  if (it == ring.begin()) it = ring.end();
  --it;
  if (it->first == id) {
    if (it == ring.begin()) it = ring.end();
    --it;
  }
  if (it->first == id) return std::nullopt;
  return std::make_pair(it->first, it->second);
}

std::size_t InterNetwork::ring_size(AsIndex anchor) const {
  return nodes_[anchor].ring.size();
}

// ---------------------------------------------------------------------------
// pointer maintenance

std::uint32_t InterNetwork::rebuild_pointers(InterVNode& vn) {
  std::vector<LevelPointer> fresh;
  for (const auto& [anchor, level] : vn.anchors) {
    if (!work_.as_up(anchor)) continue;
    const auto s = ring_succ(anchor, vn.id);
    if (!s.has_value()) continue;
    // Prune (Algorithm 3): the pointer is redundant only if a kept pointer
    // at a lower anchor *on the same up-path* (i.e. inside this anchor's
    // subtree) already targets the same successor.  Comparing across sibling
    // branches would wrongly drop pointers of multihomed IDs.
    const bool redundant = std::any_of(
        fresh.begin(), fresh.end(), [&](const LevelPointer& p) {
          return p.target == s->first &&
                 (p.anchor == anchor || is_ancestor(anchor, p.anchor));
        });
    if (redundant) continue;
    auto route = route_to_target(vn.home, anchor, s->first, s->second);
    if (!route.has_value() || !route_live(work_, *route)) continue;
    fresh.push_back(LevelPointer{anchor, level, s->first, s->second,
                                 std::move(*route)});
  }
  std::uint32_t changed = 0;
  if (fresh.size() != vn.successors.size()) {
    changed = static_cast<std::uint32_t>(
        std::max(fresh.size(), vn.successors.size()));
  } else {
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      if (fresh[i].target != vn.successors[i].target ||
          fresh[i].anchor != vn.successors[i].anchor ||
          fresh[i].target_home != vn.successors[i].target_home) {
        ++changed;
      }
    }
  }
  if (changed > 0) {
    vn.successors = std::move(fresh);
    reindex_as(vn.home);
  }
  return changed;
}

std::optional<AsRoute> InterNetwork::route_to_target(AsIndex from,
                                                     AsIndex anchor,
                                                     const NodeId& id,
                                                     AsIndex home) const {
  const auto hv = nodes_[home].hosted.find(id);
  if (hv != nodes_[home].hosted.end() && hv->second.via_provider.has_value() &&
      anchor != home) {
    const AsIndex via = *hv->second.via_provider;
    if (work_.as_up(via) && work_.link_up(home, via)) {
      auto head = build_route(work_, from, anchor, via);
      if (head.has_value()) {
        head->push_back(home);
        return head;
      }
    }
    // The preferred access branch is down: fall back to any live descent
    // (the ID re-anchors over surviving providers, section 2.3).
  }
  return build_route(work_, from, anchor, home);
}

void InterNetwork::index_vnode(const InterVNode& vn) {
  auto& known = nodes_[vn.home].known;
  auto add = [&](const NodeId& id, AsIndex home, AsIndex anchor) {
    auto& entry = known[id];
    entry.home = home;
    if (anchor != graph::kInvalidAs &&
        std::find(entry.anchors.begin(), entry.anchors.end(), anchor) ==
            entry.anchors.end()) {
      entry.anchors.push_back(anchor);
    }
  };
  // The hosted ID itself: anchored at its home (usable in any subtree that
  // contains the home AS).
  add(vn.id, vn.home, vn.home);
  for (const LevelPointer& p : vn.successors) {
    add(p.target, p.target_home, p.anchor);
  }
  for (const Finger& f : vn.fingers) {
    add(f.target, f.target_home, f.anchor);
  }
}

void InterNetwork::reindex_as(AsIndex as) {
  nodes_[as].known.clear();
  for (const auto& [id, vn] : nodes_[as].hosted) index_vnode(vn);
}

// ---------------------------------------------------------------------------
// lookups

std::uint64_t InterNetwork::simulate_lookup(AsIndex from, const NodeId& target,
                                            AsIndex anchor) const {
  const auto pred = ring_pred(anchor, target);
  if (!pred.has_value()) {
    // Empty ring at this level: the join registers with the anchor via the
    // provider chain (bootstrap registration, section 4.1 "Joining").
    const auto up = build_route(work_, from, anchor, anchor);
    return up.has_value() ? physical_hops(work_, *up) : 0;
  }
  const AsIndex pred_home = pred->second;
  AsIndex cur = from;
  std::uint64_t msgs = 0;
  NodeId best = max_distance();
  for (std::uint32_t guard = 0; guard < cfg_.max_segments; ++guard) {
    if (cur == pred_home) return msgs;
    const auto cand = best_candidate(cur, target, anchor);
    bool moved = false;
    if (cand.has_value()) {
      const NodeId d = NodeId::distance_cw(cand->id, target);
      if (d < best && cand->home != cur) {
        msgs += route_hops(cand->route);
        cur = cand->home;
        best = d;
        moved = true;
      }
    }
    if (!moved) {
      // No local progress: fall back to the bootstrap path -- climb to the
      // anchor and descend to a registered member (the anchor keeps a short
      // list of identifiers in its subtree for exactly this purpose).
      const auto boot = build_route(work_, cur, anchor, pred_home);
      if (!boot.has_value()) return msgs;
      msgs += physical_hops(work_, *boot);
      return msgs;
    }
  }
  return msgs;
}

InterNetwork::WireExchange InterNetwork::reliable_exchange(
    std::uint64_t msgs, const wire::msg::ControlMessage& m) {
  WireExchange ex;
  // Every AS-level leg of the exchange carries the same typed frame; encode
  // it once, verify the round trip, and charge its size per transmitted leg.
  const std::vector<std::uint8_t> frame =
      wire::msg::encode_control(m, NodeId{}, NodeId{});
  if (frame.empty()) {
    // encode_control refused (oversized field): a zero-byte frame is never
    // transmitted, the exchange fails loudly instead.
    sim_.metrics().add(encode_failures_id_);
    return ex;
  }
  assert(wire::msg::decode_control(frame).has_value());
  const std::uint64_t frags = std::max<std::uint64_t>(
      1, (frame.size() + wire::kDefaultMtu - 1) / wire::kDefaultMtu);
  if (faults_ == nullptr || !faults_->message_faults_enabled() || msgs == 0) {
    ex.msgs = msgs * frags;
    ex.bytes = msgs * frame.size();
    ex.ok = true;
    return ex;
  }
  // The interdomain model is message-count-abstract, so loss applies per
  // AS-level transmission: an attempt survives only if every one of its
  // `msgs` legs does.  Lost attempts charge the legs transmitted before the
  // drop, then back off and retry (InterConfig::retry).  A corrupted frame
  // is rejected by the receiver's CRC check, which the sender cannot tell
  // from loss -- same retry path.
  const unsigned attempts = std::max(1u, cfg_.retry.max_attempts);
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) faults_->note_retry();
    const sim::PathDecision d = faults_->on_path(msgs);
    ex.msgs += d.transmissions * frags;
    ex.bytes += d.transmissions * frame.size();
    bool delivered = !d.dropped;
    if (delivered && faults_->corruption_enabled()) {
      std::vector<std::uint8_t> rx = frame;
      if (faults_->maybe_corrupt_frame(rx)) {
        assert(!wire::msg::decode_control(rx).has_value());
        sim_.metrics().add(codec_rejected_id_);
        delivered = false;
      }
    }
    if (delivered) {
      ex.ok = true;
      return ex;
    }
  }
  faults_->note_retry_exhausted();
  return ex;
}

// ---------------------------------------------------------------------------
// fingers

void InterNetwork::select_fingers(InterVNode& vn) {
  if (cfg_.fingers_per_id == 0) return;
  const unsigned b = cfg_.finger_digit_bits;
  vn.fingers.clear();

  // Section 4.1: "ROFL tries to select fingers at each level of the
  // hierarchy", preferring entries reachable via the fewest up-links.  We
  // therefore fill one prefix table per anchor, lowest level first, from the
  // IDs registered in that anchor's ring (so every finger target lies inside
  // the anchor's subtree and using it can never violate isolation).
  for (const auto& [anchor, level] : vn.anchors) {
    if (vn.fingers.size() >= cfg_.fingers_per_id) break;
    if (!work_.as_up(anchor)) continue;
    const auto& ring = nodes_[anchor].ring;
    if (ring.size() < 2) continue;
    unsigned empty_rows = 0;
    for (unsigned i = 0; i + b <= 128 && empty_rows < 2 &&
                         vn.fingers.size() < cfg_.fingers_per_id;
         i += b) {
      const std::uint64_t own_digit = vn.id.digit(i, b);
      bool row_hit = false;
      for (std::uint64_t j = 0; j < (1ull << b); ++j) {
        if (j == own_digit) continue;
        if (vn.fingers.size() >= cfg_.fingers_per_id) break;
        const NodeId lo = NodeId::compose(vn.id, i, j, b, /*fill_ones=*/false);
        const NodeId hi = NodeId::compose(vn.id, i, j, b, /*fill_ones=*/true);
        const auto it = ring.lower_bound(lo);
        if (it == ring.end() || it->first > hi || it->first == vn.id) continue;
        auto route = route_to_target(vn.home, anchor, it->first, it->second);
        if (!route.has_value()) continue;
        vn.fingers.push_back(Finger{i, j, it->first, it->second, anchor,
                                    level, std::move(*route)});
        row_hit = true;
      }
      empty_rows = row_hit ? 0 : empty_rows + 1;
    }
  }
}

// ---------------------------------------------------------------------------
// join

InterJoinStats InterNetwork::join_host(const Identity& ident, AsIndex home,
                                       JoinStrategy strategy) {
  InterJoinStats stats;
  const NodeId id = ident.id();
  if (home >= base_copy_.as_count() || !work_.as_up(home)) return stats;
  if (directory_.contains(id)) return stats;

  // Self-certification check at the hosting router (section 2.1).
  const std::uint64_t nonce = rng_.next_u64();
  if (!verify_ownership(id, ident.public_key(), nonce, ident.prove(nonce),
                        ident.private_key())) {
    return stats;
  }
  stats = join_id(id, home, strategy, std::nullopt);
  if (stats.ok) identities_.emplace(id, ident);
  return stats;
}

InterJoinStats InterNetwork::join_group_id(const NodeId& id, AsIndex home,
                                           JoinStrategy strategy,
                                           std::optional<AsIndex> via_provider) {
  if (home >= base_copy_.as_count() || !work_.as_up(home)) return {};
  if (directory_.contains(id)) return {};
  return join_id(id, home, strategy, via_provider);
}

InterJoinStats InterNetwork::join_id(const NodeId& id, AsIndex home,
                                     JoinStrategy strategy,
                                     std::optional<AsIndex> via_provider) {
  InterJoinStats stats;
  stats.messages += 1;  // host -> hosting router
  // The interdomain host announces itself with a bare join request (fingers
  // ride the intradomain exchange, section 6.3).
  stats.bytes += wire::msg::control_wire_size(wire::msg::JoinRequest{});

  InterVNode vn;
  vn.id = id;
  vn.home = home;
  vn.strategy = strategy;
  vn.via_provider = via_provider;
  const auto anchors = anchors_for(home, strategy, via_provider);
  if (anchors.empty()) return stats;

  // Locate the predecessor at each level (Algorithm 3), bottom-up, charging
  // the walk unless the level's successor repeats the previous one and the
  // redundant-lookup optimization is on (section 6.3).  Under a fault
  // injector each level's exchange runs through retry-with-backoff; a level
  // whose retries are exhausted is skipped -- the ID joins the rings it
  // could reach, and the next repair() pass re-drives the missing levels.
  std::optional<NodeId> prev_succ;
  bool prev_valid = false;
  std::vector<Anchor> joined;
  joined.reserve(anchors.size());
  for (const Anchor& a : anchors) {
    const auto s = ring_succ(a.as, id);
    const bool redundant = cfg_.prune_redundant_lookups && prev_valid &&
                           s.has_value() && prev_succ.has_value() &&
                           s->first == *prev_succ;
    if (!redundant) {
      // Each leg of the merge exchange carries a ring-merge registration.
      const wire::msg::RingMerge rm{
          .id = id,
          .home_as = home,
          .anchor_as = a.as,
          .level = static_cast<std::uint16_t>(a.level),
          .op = 0};
      const WireExchange ex =
          reliable_exchange(simulate_lookup(home, id, a.as) + 1, rm);
      stats.messages += ex.msgs;
      stats.bytes += ex.bytes;
      if (!ex.ok) continue;
    }
    prev_succ = s.has_value() ? std::optional<NodeId>(s->first) : std::nullopt;
    prev_valid = true;
    nodes_[a.as].ring[id] = home;
    joined.push_back(a);
  }
  if (joined.empty()) {
    // Every level was lost: the join failed outright, leaving no partial
    // state behind.  The retransmission traffic is still charged.
    sim_.counters().add(sim::MsgCategory::kJoin, stats.messages);
    sim_.counters().add_bytes(sim::MsgCategory::kJoin, stats.bytes);
    return stats;
  }
  for (const Anchor& a : joined) vn.anchors.emplace_back(a.as, a.level);

  directory_[id] = home;
  strategies_[id] = strategy;

  // Install our own pruned successor set and splice ourselves into each
  // predecessor's state.
  (void)rebuild_pointers(vn);
  select_fingers(vn);
  stats.messages += vn.fingers.size();  // finger acquisition traffic
  stats.bytes +=
      vn.fingers.size() * wire::msg::control_wire_size(wire::msg::Locate{});
  auto [it, inserted] = nodes_[home].hosted.emplace(id, std::move(vn));
  assert(inserted);
  index_vnode(it->second);
  // Record this ID at every finger target ("list of IDs pointing to it",
  // section 4.1) so targets can tear our fingers down when they depart.
  for (const Finger& f : it->second.fingers) {
    const auto tv = nodes_[f.target_home].hosted.find(f.target);
    if (tv != nodes_[f.target_home].hosted.end()) {
      tv->second.finger_back_refs.insert(id);
    }
  }

  for (const Anchor& a : joined) {
    const auto p = ring_pred(a.as, id);
    if (!p.has_value()) continue;
    auto& pred_node = nodes_[p->second];
    const auto pv = pred_node.hosted.find(p->first);
    if (pv == pred_node.hosted.end()) continue;
    const std::uint32_t changed = rebuild_pointers(pv->second);
    stats.messages += changed;
    stats.bytes +=
        changed * wire::msg::control_wire_size(wire::msg::PointerInstall{});
  }

  // Subtree bloom summaries along the whole up-hierarchy.
  if (nodes_[home].subtree_bloom != nullptr) {
    const auto up = work_.up_hierarchy(home, /*include_backup=*/false);
    for (const AsIndex a : up.nodes) {
      if (nodes_[a].subtree_bloom != nullptr) {
        nodes_[a].subtree_bloom->insert(id);
      }
    }
  }

  sim_.counters().add(sim::MsgCategory::kJoin, stats.messages);
  sim_.counters().add_bytes(sim::MsgCategory::kJoin, stats.bytes);
  stats.ok = true;
  if (obs::Tracer* t = sim_.tracer()) {
    t->instant("inter.join", "interdomain", sim_.now_ms() * 1000.0,
               /*track=*/3,
               {obs::TraceArg{"home", std::uint64_t{home}},
                obs::TraceArg{"messages", stats.messages}});
  }
  return stats;
}

InterJoinStats InterNetwork::join_random_host(JoinStrategy strategy) {
  const Identity ident = Identity::generate(rng_);
  // Weight the home AS by host count (skitter-style distribution).
  const std::uint64_t total = base_copy_.total_hosts();
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::uint64_t pick = rng_.below(std::max<std::uint64_t>(1, total));
    AsIndex home = 0;
    for (AsIndex a = 0; a < base_copy_.as_count(); ++a) {
      const std::uint64_t h = base_copy_.host_count(a);
      if (pick < h) {
        home = a;
        break;
      }
      pick -= h;
    }
    if (work_.as_up(home)) return join_host(ident, home, strategy);
  }
  return {};
}

InterRepairStats InterNetwork::leave_host(const NodeId& id) {
  InterRepairStats stats;
  const auto dir = directory_.find(id);
  if (dir == directory_.end()) return stats;
  const AsIndex home = dir->second;
  const auto hv = nodes_[home].hosted.find(id);
  if (hv == nodes_[home].hosted.end()) return stats;

  const auto anchors = hv->second.anchors;
  const std::set<NodeId> back_refs = std::move(hv->second.finger_back_refs);
  nodes_[home].hosted.erase(hv);
  directory_.erase(dir);
  identities_.erase(id);
  strategies_.erase(id);
  reindex_as(home);

  // Tear down fingers pointing at the departed ID (the back-reference list
  // of section 4.1); one notification per owner.
  for (const NodeId& owner : back_refs) {
    const auto odir = directory_.find(owner);
    if (odir == directory_.end()) continue;
    auto& onode = nodes_[odir->second];
    const auto ov = onode.hosted.find(owner);
    if (ov == onode.hosted.end()) continue;
    const std::size_t before = ov->second.fingers.size();
    std::erase_if(ov->second.fingers,
                  [&](const Finger& f) { return f.target == id; });
    if (ov->second.fingers.size() != before) {
      ++stats.messages;
      stats.bytes += wire::msg::control_wire_size(
          wire::msg::Teardown{.id = id, .reason = 1});
      reindex_as(odir->second);
    }
  }
  // Cached pointers to the departed ID are purged lazily network-wide.
  for (auto& node : nodes_) {
    if (node.cache.erase(id) > 0) std::erase(node.cache_fifo, id);
  }

  for (const auto& [anchor, level] : anchors) {
    nodes_[anchor].ring.erase(id);
    ++stats.pointers_torn;
    stats.messages += 1;  // teardown toward the level predecessor
    stats.bytes += wire::msg::control_wire_size(
        wire::msg::Teardown{.id = id, .reason = 1});
    const auto p = ring_pred(anchor, id);
    if (!p.has_value()) continue;
    auto& pred_node = nodes_[p->second];
    const auto pv = pred_node.hosted.find(p->first);
    if (pv == pred_node.hosted.end()) continue;
    const std::uint32_t changed = rebuild_pointers(pv->second);
    stats.messages += changed;
    stats.bytes +=
        changed * wire::msg::control_wire_size(wire::msg::PointerInstall{});
  }
  sim_.counters().add(sim::MsgCategory::kTeardown, stats.messages);
  sim_.counters().add_bytes(sim::MsgCategory::kTeardown, stats.bytes);
  return stats;
}

// ---------------------------------------------------------------------------
// data plane

std::optional<InterNetwork::RCandidate> InterNetwork::best_candidate(
    AsIndex as, const NodeId& dest, std::optional<AsIndex> within) const {
  const AsNode& node = nodes_[as];
  std::optional<RCandidate> best;

  auto consider = [&](const NodeId& id, AsIndex home, AsRoute route) {
    if (home == as) return;  // self entries offer no movement
    if (best.has_value() && !NodeId::closer_to(dest, id, best->id)) return;
    if (!route_live(work_, route)) return;
    best = RCandidate{id, home, std::move(route)};
  };

  // Greedy index scan: walk backwards from dest, stopping at the first
  // entries that satisfy the subtree constraint.  Routing at level
  // `within` only visits members of ring(within): a sub-ring member that
  // never merged into the constraining ring (a single-homed ID whose chain
  // exits via a sibling branch) would be a dead end for the walk.  The
  // membership is owner-visible state -- ring neighbors exchange anchor
  // sets during joins and maintenance.
  if (!node.known.empty()) {
    auto it = node.known.upper_bound(dest);
    std::size_t scanned = 0;
    const std::size_t max_scan = node.known.size();
    while (scanned < max_scan) {
      if (it == node.known.begin()) it = node.known.end();
      --it;
      ++scanned;
      const auto& [id, entry] = *it;
      if (within.has_value() && !nodes_[*within].ring.contains(id)) continue;
      if (entry.home != as) {
        AsIndex use_anchor = graph::kInvalidAs;
        for (const AsIndex a : entry.anchors) {
          if (!within.has_value() || is_ancestor(*within, a) || a == *within) {
            use_anchor = a;
            break;
          }
        }
        if (use_anchor != graph::kInvalidAs) {
          auto route = route_to_target(as, use_anchor, id, entry.home);
          if (route.has_value()) {
            consider(id, entry.home, std::move(*route));
            // Sorted scan: once a candidate was accepted it is the closest
            // usable one; a rejected route (dead links) keeps the scan going.
            if (best.has_value()) break;
          }
        }
      } else if (id == dest) {
        break;  // hosted here; caller handles delivery
      }
    }
  }

  // Pointer cache (figure 8c), guarded by the subtree bloom (section 4.1):
  // free to shortcut only when dest is not below this AS.
  if (cfg_.cache_capacity_per_as > 0 && !node.cache.empty()) {
    const bool below =
        node.subtree_bloom != nullptr && node.subtree_bloom->may_contain(dest);
    if (!below) {
      auto it = node.cache.upper_bound(dest);
      if (it == node.cache.begin()) it = node.cache.end();
      --it;
      const auto& [cid, chome] = *it;
      if (within.has_value() && !nodes_[*within].ring.contains(cid)) {
        // skip non-members (see above)
      } else if (chome != as &&
                 (!within.has_value() || is_ancestor(*within, chome))) {
        // Route via the lowest common ancestor.
        const auto up = work_.up_hierarchy(as, /*include_backup=*/false);
        std::vector<std::pair<unsigned, AsIndex>> ordered;
        for (const AsIndex a : up.nodes) ordered.emplace_back(up.level.at(a), a);
        std::sort(ordered.begin(), ordered.end());
        for (const auto& [lvl, anc] : ordered) {
          if (!is_ancestor(anc, chome)) continue;
          if (within.has_value() && !(is_ancestor(*within, anc) || anc == *within)) {
            continue;
          }
          auto route = route_to_target(as, anc, cid, chome);
          if (route.has_value()) consider(cid, chome, std::move(*route));
          break;
        }
      }
    }
  }
  return best;
}

void InterNetwork::cache_insert(AsIndex as, const NodeId& id, AsIndex home) {
  if (cfg_.cache_capacity_per_as == 0 || as == home) return;
  auto& node = nodes_[as];
  if (node.cache.contains(id)) return;
  if (node.cache.size() >= cfg_.cache_capacity_per_as &&
      !node.cache_fifo.empty()) {
    node.cache.erase(node.cache_fifo.front());
    node.cache_fifo.erase(node.cache_fifo.begin());
  }
  node.cache.emplace(id, home);
  node.cache_fifo.push_back(id);
}

void InterNetwork::record_hop(std::uint64_t trace_id, obs::HopKind kind,
                              AsIndex as, const NodeId& chased) {
  if (recorder_ == nullptr) return;
  recorder_->record(obs::HopRecord{
      .trace_id = trace_id,
      .t_ms = sim_.now_ms(),
      .domain = obs::HopDomain::kInter,
      .node = as,
      .category = static_cast<std::uint8_t>(sim::MsgCategory::kData),
      .kind = kind,
      .chased = chased});
}

InterRouteStats InterNetwork::route(AsIndex src_as, const NodeId& dest,
                                    std::vector<AsIndex>* traversed,
                                    std::uint64_t trace_id) {
  std::vector<AsIndex> local_trace;
  std::vector<AsIndex>* trace = traversed != nullptr ? traversed : &local_trace;
  trace->push_back(src_as);
  InterRouteStats stats;
  sim_.metrics().add(routes_id_);
  if (recorder_ != nullptr) {
    stats.trace_id = trace_id != 0 ? trace_id : recorder_->new_trace();
  }
  record_hop(stats.trace_id, obs::HopKind::kStart, src_as, dest);

  std::vector<AsIndex> crossed_peers;
  if (work_.as_up(src_as)) {
    if (nodes_[src_as].hosted.contains(dest)) {
      stats.delivered = true;
      record_hop(stats.trace_id, obs::HopKind::kDeliver, src_as, dest);
    } else {
      // Canon-style level escalation: walk the source's up-hierarchy in BFS
      // (level) order and commit to the first ancestor whose ring registers
      // the destination -- the earliest common ancestor on any provider
      // branch -- then route greedily *within that subtree*.  This is what
      // gives ROFL its isolation property (section 4.1).  Registration
      // probes are control messages, not data-path hops.  In bloom peering
      // mode each ancestor also consults its peers' subtree filters before
      // relaying further upward (section 4.2), backtracking on a false
      // positive.
      const auto up = work_.up_hierarchy(src_as);
      std::uint32_t probes = 0;
      for (const AsIndex a : up.nodes) {
        ++probes;
        if (nodes_[a].ring.contains(dest) ||
            (a == src_as && nodes_[a].hosted.contains(dest))) {
          record_hop(stats.trace_id, obs::HopKind::kLevelEscalate, a, dest);
          const InterRouteStats sub =
              route_constrained(src_as, dest, a, trace, stats.trace_id);
          stats.as_hops += sub.as_hops;
          stats.segments += sub.segments;
          if (sub.delivered) {
            stats.delivered = true;
            break;
          }
          continue;  // stale registration: keep escalating
        }
        if (cfg_.peering_mode != PeeringMode::kBloom) continue;
        bool delivered_via_peer = false;
        for (const AsIndex peer : base_copy_.peers(a)) {
          if (!base_copy_.as_up(peer) || !base_copy_.link_up(a, peer)) continue;
          if (nodes_[peer].subtree_bloom == nullptr ||
              !nodes_[peer].subtree_bloom->may_contain(dest)) {
            continue;
          }
          // Climb to the ancestor, cross the peering link, and search only
          // the peer's down-hierarchy.
          const auto climb = build_route(work_, src_as, a, a);
          if (!climb.has_value() || !route_live(work_, *climb)) continue;
          const std::uint32_t climb_hops = physical_hops(work_, *climb) + 1;
          stats.as_hops += climb_hops;
          ++stats.peer_links_used;
          for (std::size_t i = 1; i < climb->size(); ++i) {
            trace->push_back((*climb)[i]);
          }
          trace->push_back(peer);
          crossed_peers.push_back(peer);
          sim_.metrics().add(peer_crossings_id_);
          record_hop(stats.trace_id, obs::HopKind::kPeeringCross, peer, dest);
          const InterRouteStats sub =
              route_constrained(peer, dest, peer, trace, stats.trace_id);
          stats.as_hops += sub.as_hops;
          stats.segments += sub.segments;
          if (sub.delivered) {
            stats.delivered = true;
            delivered_via_peer = true;
            break;
          }
          // False positive: the packet returns over the same path and the
          // escalation continues (both directions charged).
          stats.as_hops += sub.as_hops + climb_hops;
          ++stats.backtracks;
          sim_.metrics().add(backtracks_id_);
        }
        if (delivered_via_peer) break;
      }
      sim_.counters().add(sim::MsgCategory::kControl, probes);
      sim_.counters().add_bytes(
          sim::MsgCategory::kControl,
          probes * wire::msg::control_wire_size(
                       wire::msg::Locate{.target = dest, .purpose = 2}));
      sim_.metrics().add(probes_id_, probes);
    }
  }
  if (stats.delivered) {
    sim_.metrics().add(delivered_id_);
  } else {
    record_hop(stats.trace_id, obs::HopKind::kDrop, src_as, dest);
  }

  // Stretch baseline: shortest valley-free BGP path on the raw topology.
  const auto dst_home = home_of(dest);
  if (dst_home.has_value()) {
    stats.bgp_hops = bgp_policy_hops(base_copy_, src_as, *dst_home).value_or(0);
  }

  // Isolation check (section 4.1): every traversed AS must fall under some
  // earliest common ancestor of source and destination.
  if (stats.delivered && dst_home.has_value()) {
    const auto up_s = work_.up_hierarchy(src_as, /*include_backup=*/false);
    // The destination participates only in the rings it joined (its anchor
    // set); isolation is relative to that merged hierarchy.  For multihomed
    // and peering joins the anchor set equals the full up-hierarchy; for
    // single-homed and ephemeral joins it is the joined chain.
    std::vector<AsIndex> dst_anchors;
    if (const InterVNode* dv = find_vnode(dest)) {
      for (const auto& [a, lvl] : dv->anchors) dst_anchors.push_back(a);
    } else {
      const auto up_d = work_.up_hierarchy(*dst_home, /*include_backup=*/false);
      dst_anchors = up_d.nodes;
    }
    std::vector<AsIndex> common;
    for (const AsIndex a : up_s.nodes) {
      if (std::find(dst_anchors.begin(), dst_anchors.end(), a) !=
          dst_anchors.end()) {
        common.push_back(a);
      }
    }
    // "Earliest" common ancestors: the ones fewest provider-levels above
    // the source (with multihoming several branches can tie).  The
    // guarantee is that the data path stays inside the subtree of one of
    // these nearest common ancestors.
    unsigned best_level = ~0u;
    for (const AsIndex w : common) {
      best_level = std::min(best_level, up_s.level.at(w));
    }
    std::vector<AsIndex> minimal;
    for (const AsIndex w : common) {
      if (up_s.level.at(w) == best_level) minimal.push_back(w);
    }
    for (const AsIndex t : *trace) {
      if (work_.is_virtual(t)) continue;
      bool covered = std::any_of(
          minimal.begin(), minimal.end(),
          [&](AsIndex w) { return is_ancestor(w, t); });
      // Under the bloom peering rule the packet may legitimately climb the
      // source's own up-hierarchy, cross a peering link, and descend the
      // peer's subtree -- that is the containment guarantee for peered
      // traffic (section 4.2), including pairs with no common provider
      // ancestor at all.
      if (!covered && !crossed_peers.empty()) {
        covered = up_s.contains(t) ||
                  std::any_of(crossed_peers.begin(), crossed_peers.end(),
                              [&](AsIndex p) { return is_ancestor(p, t); });
      }
      if (!covered) {
        stats.isolation_held = false;
        break;
      }
    }
    // Populate caches along the traversed path (control/forwarding driven
    // cache fill, section 4.1 "Exploiting reference locality").
    if (cfg_.cache_capacity_per_as > 0) {
      for (const AsIndex t : *trace) {
        if (!work_.is_virtual(t)) cache_insert(t, dest, *dst_home);
      }
    }
  }
  sim_.counters().add(sim::MsgCategory::kData, stats.as_hops);
  sim_.counters().add_bytes(sim::MsgCategory::kData,
                            std::uint64_t{stats.as_hops} * data_frame_bytes_);
  if (!shard_map_.empty()) {
    // Shard-boundary crossings along the traversed AS path: each one is a
    // frame the sharded engine would move through an SPSC channel.
    std::uint64_t crossings = 0;
    for (std::size_t i = 1; i < trace->size(); ++i) {
      const AsIndex u = (*trace)[i - 1];
      const AsIndex v = (*trace)[i];
      if (u >= shard_map_.size() || v >= shard_map_.size()) continue;
      if (shard_map_[u] != shard_map_[v]) ++crossings;
    }
    if (crossings > 0) {
      sim_.metrics().add(shard_cross_msgs_id_, crossings);
      sim_.metrics().add(shard_cross_bytes_id_, crossings * data_frame_bytes_);
    }
  }
  return stats;
}

InterRouteStats InterNetwork::route_constrained(
    AsIndex src_as, const NodeId& dest, std::optional<AsIndex> within,
    std::vector<AsIndex>* traversed, std::uint64_t trace_id,
    std::uint32_t depth) {
  (void)depth;
  InterRouteStats stats;
  stats.trace_id = trace_id;
  if (!work_.as_up(src_as)) return stats;
  AsIndex cur = src_as;
  NodeId committed = max_distance();
  bool bootstrapped = false;

  for (std::uint32_t seg = 0; seg < cfg_.max_segments; ++seg) {
    if (nodes_[cur].hosted.contains(dest)) {
      stats.delivered = true;
      record_hop(trace_id, obs::HopKind::kDeliver, cur, dest);
      return stats;
    }
    const auto cand = best_candidate(cur, dest, within);
    const bool progress =
        cand.has_value() && NodeId::distance_cw(cand->id, dest) < committed;
    if (!progress) {
      // Bootstrap via the anchor's short registration list (section 4.1:
      // "their providers need only maintain a short list of such
      // identifiers"): when the current AS holds no useful pointers -- e.g.
      // right after crossing a peering link, or when the source AS itself
      // hosts no identifiers -- the packet is handed to the ring's
      // smallest-ID member (the zero node of section 3.2) and greedy
      // routing continues from there.  One bootstrap per descent.
      if (within.has_value() && !bootstrapped) {
        bootstrapped = true;
        const auto& ring = nodes_[*within].ring;
        if (!ring.empty() && ring.begin()->second != cur) {
          const auto [zid, zhome] = *ring.begin();
          auto boot = route_to_target(cur, *within, zid, zhome);
          if (boot.has_value() && route_live(work_, *boot)) {
            record_hop(trace_id, obs::HopKind::kBootstrap, cur, zid);
            stats.as_hops += route_hops(*boot);
            ++stats.segments;
            for (std::size_t i = 1; i < boot->size(); ++i) {
              traversed->push_back((*boot)[i]);
            }
            // The jump is not necessarily numeric progress; reset the
            // greedy bound to the zero node's position.
            committed = NodeId::distance_cw(zid, dest);
            cur = zhome;
            continue;
          }
        }
      }
      return stats;  // no way forward: dest absent from this subtree
    }

    committed = NodeId::distance_cw(cand->id, dest);
    record_hop(trace_id, obs::HopKind::kRingPointer, cur, cand->id);
    stats.as_hops += route_hops(cand->route);
    ++stats.segments;
    for (std::size_t i = 1; i < cand->route.size(); ++i) {
      traversed->push_back(cand->route[i]);
      record_hop(trace_id, obs::HopKind::kForward, cand->route[i], cand->id);
    }
    cur = cand->home;
  }
  return stats;
}

// ---------------------------------------------------------------------------
// failures

void InterNetwork::reanchor_all(InterRepairStats& stats) {
  // Section 2.3 "Recovering": after AS-level topology changes, an AS prunes
  // G_X to working links and redetermines the successors of its IDs over
  // that graph.  Recompute each hosted ID's anchor set, fix the ring
  // registrations, and rebuild its pointers; only actual changes are
  // charged.
  // Pass 1: fix anchor sets and ring registrations everywhere, so pass 2
  // rebuilds pointers against fully updated registries.
  for (AsIndex home = 0; home < work_.as_count(); ++home) {
    if (!work_.as_up(home)) continue;
    for (auto& [id, vn] : nodes_[home].hosted) {
      // Virtual-server copies keep the customer's anchor set pinned: the
      // whole point of the mechanism is that the rings do not churn.
      if (vn.virtual_server_for.has_value()) continue;
      const auto fresh = anchors_for(home, vn.strategy, vn.via_provider);
      std::vector<std::pair<AsIndex, unsigned>> fresh_pairs;
      fresh_pairs.reserve(fresh.size());
      for (const Anchor& a : fresh) fresh_pairs.emplace_back(a.as, a.level);
      if (fresh_pairs == vn.anchors) continue;
      for (const auto& [anchor, level] : vn.anchors) {
        const bool kept = std::any_of(
            fresh_pairs.begin(), fresh_pairs.end(),
            [&, anchor = anchor](const auto& f) { return f.first == anchor; });
        if (!kept) {
          nodes_[anchor].ring.erase(id);
          ++stats.pointers_torn;
          ++stats.messages;  // deregistration / teardown
          stats.bytes += wire::msg::control_wire_size(
              wire::msg::RingMerge{.id = id, .op = 1});
        }
      }
      // Register at the new anchors.  Under a fault injector a registration
      // can fail despite retries; it is then left out of the recorded anchor
      // set, so the comparison above keeps failing and the next repair pass
      // retries it (convergence once the loss clears).
      std::vector<std::pair<AsIndex, unsigned>> registered;
      registered.reserve(fresh_pairs.size());
      for (const auto& [anchor, level] : fresh_pairs) {
        if (nodes_[anchor].ring.contains(id)) {
          registered.emplace_back(anchor, level);
          continue;
        }
        const wire::msg::RingMerge rm{
            .id = id,
            .home_as = home,
            .anchor_as = anchor,
            .level = static_cast<std::uint16_t>(level),
            .op = 0};
        const WireExchange ex =
            reliable_exchange(simulate_lookup(home, id, anchor), rm);
        stats.messages += ex.msgs;
        stats.bytes += ex.bytes;
        if (!ex.ok) continue;
        nodes_[anchor].ring[id] = home;
        registered.emplace_back(anchor, level);
      }
      vn.anchors = std::move(registered);
    }
  }
  // Pass 2: rebuild every vnode's pointer set; only changes are charged.
  for (AsIndex home = 0; home < work_.as_count(); ++home) {
    if (!work_.as_up(home)) continue;
    bool touched = false;
    for (auto& [id, vn] : nodes_[home].hosted) {
      const std::uint32_t changed = rebuild_pointers(vn);
      if (changed > 0) {
        stats.pointers_torn += changed;
        stats.messages += changed;
        stats.bytes +=
            changed * wire::msg::control_wire_size(wire::msg::Repair{});
        touched = true;
      }
    }
    if (touched) reindex_as(home);
  }
  // Pass 3: refresh subtree bloom summaries along each ID's *current*
  // up-hierarchy.  A restored link or AS can add ancestors that never saw
  // the ID's join-time insertion, and a bloom false negative breaks the
  // soundness guarantee the summaries are routed on.  Insertion is
  // idempotent, so re-inserting everything is safe; stale positives left at
  // former ancestors are allowed (blooms cannot delete) and only cost a
  // wasted probe.
  for (AsIndex home = 0; home < work_.as_count(); ++home) {
    if (!work_.as_up(home) || nodes_[home].subtree_bloom == nullptr) continue;
    if (nodes_[home].hosted.empty()) continue;
    const auto up = work_.up_hierarchy(home, /*include_backup=*/false);
    for (const AsIndex a : up.nodes) {
      if (nodes_[a].subtree_bloom == nullptr) continue;
      for (const auto& [id, vn] : nodes_[home].hosted) {
        nodes_[a].subtree_bloom->insert(id);
      }
    }
  }
  if (obs::Tracer* t = sim_.tracer()) {
    t->instant("inter.reanchor", "interdomain", sim_.now_ms() * 1000.0,
               /*track=*/3,
               {obs::TraceArg{"messages", stats.messages},
                obs::TraceArg{"pointers_torn",
                              std::uint64_t{stats.pointers_torn}}});
  }
}

InterRepairStats InterNetwork::repair() {
  InterRepairStats stats;
  reanchor_all(stats);
  sim_.counters().add(sim::MsgCategory::kRepair, stats.messages);
  sim_.counters().add_bytes(sim::MsgCategory::kRepair, stats.bytes);
  return stats;
}

InterRepairStats InterNetwork::fail_as(AsIndex as) {
  InterRepairStats stats;
  if (as >= base_copy_.as_count() || !base_copy_.as_up(as)) return stats;
  base_copy_.set_as_up(as, false);
  work_.set_as_up(as, false);
  masks_valid_ = false;

  // IDs hosted at the failed AS disappear from every ring they joined.
  std::vector<NodeId> dead;
  for (const auto& [id, vn] : nodes_[as].hosted) {
    dead.push_back(id);
    for (const auto& [anchor, level] : vn.anchors) {
      nodes_[anchor].ring.erase(id);
    }
  }
  stats.ids_lost = static_cast<std::uint32_t>(dead.size());
  for (const NodeId& id : dead) directory_.erase(id);

  // Remote pointers to (or through) the failed AS are torn down, fingers
  // pruned, and every surviving ID's anchors/registrations re-derived over
  // the pruned graph; overhead tracks the number of dead identifiers, as
  // section 6.3 reports.
  for (AsIndex a = 0; a < work_.as_count(); ++a) {
    if (a == as || !work_.as_up(a)) continue;
    bool touched = false;
    for (auto& [id, vn] : nodes_[a].hosted) {
      const std::size_t nf = vn.fingers.size();
      std::erase_if(vn.fingers, [&](const Finger& f) {
        return f.target_home == as ||
               std::find(f.route.begin(), f.route.end(), as) != f.route.end();
      });
      if (nf != vn.fingers.size()) touched = true;
    }
    if (touched) reindex_as(a);
    // Cached pointers to dead IDs are dropped lazily; drop eagerly here.
    for (const NodeId& id : dead) {
      if (nodes_[a].cache.erase(id) > 0) {
        std::erase(nodes_[a].cache_fifo, id);
      }
    }
  }
  reanchor_all(stats);
  sim_.counters().add(sim::MsgCategory::kRepair, stats.messages);
  sim_.counters().add_bytes(sim::MsgCategory::kRepair, stats.bytes);
  return stats;
}

InterRepairStats InterNetwork::fail_as_with_virtual_servers(
    AsIndex customer, AsIndex provider) {
  InterRepairStats stats;
  if (customer >= base_copy_.as_count() || !base_copy_.as_up(customer)) {
    return stats;
  }
  if (provider >= work_.as_count() || !work_.as_up(provider)) return stats;
  if (base_copy_.relationship(customer, provider) != graph::AsRel::kProvider) {
    return stats;  // virtual servers live at a direct provider
  }

  // Migrate each hosted vnode to the provider: same ID, same registrations,
  // new home.  One transfer message per ID (state shipped over the access
  // link before it goes dark / from the provider's standing copy).
  std::vector<NodeId> moved;
  for (auto& [id, vn] : nodes_[customer].hosted) {
    InterVNode copy = vn;
    copy.home = provider;
    copy.via_provider.reset();
    copy.virtual_server_for = customer;
    nodes_[provider].hosted.emplace(id, std::move(copy));
    directory_[id] = provider;
    for (const auto& [anchor, level] : vn.anchors) {
      auto it = nodes_[anchor].ring.find(id);
      if (it != nodes_[anchor].ring.end()) it->second = provider;
    }
    moved.push_back(id);
    ++stats.messages;
    // The transfer re-registers the ID's ring entries under the provider.
    stats.bytes += wire::msg::control_wire_size(wire::msg::RingMerge{
        .id = id, .home_as = provider, .anchor_as = customer, .op = 0});
  }
  nodes_[customer].hosted.clear();
  nodes_[customer].known.clear();
  virtual_server_host_[customer] = provider;

  base_copy_.set_as_up(customer, false);
  work_.set_as_up(customer, false);
  masks_valid_ = false;
  // The customer's own anchor (its internal ring) is down; re-derive
  // pointers.  Because every migrated ID keeps its higher-level
  // registrations, remote state barely changes.
  reanchor_all(stats);
  reindex_as(provider);
  stats.ids_lost = 0;  // nothing lost: that is the point
  (void)moved;
  sim_.counters().add(sim::MsgCategory::kRepair, stats.messages);
  sim_.counters().add_bytes(sim::MsgCategory::kRepair, stats.bytes);
  return stats;
}

InterRepairStats InterNetwork::restore_as(AsIndex as) {
  InterRepairStats stats;
  if (as >= base_copy_.as_count() || base_copy_.as_up(as)) return stats;
  base_copy_.set_as_up(as, true);
  work_.set_as_up(as, true);
  masks_valid_ = false;

  // Virtual-server return: migrate the IDs back from the provider; their
  // ring registrations never churned, so this is a re-point, not a rejoin.
  const auto vs = virtual_server_host_.find(as);
  if (vs != virtual_server_host_.end()) {
    const AsIndex provider = vs->second;
    std::vector<NodeId> coming_home;
    for (const auto& [id, vn] : nodes_[provider].hosted) {
      if (vn.virtual_server_for == as) coming_home.push_back(id);
    }
    for (const NodeId& id : coming_home) {
      auto node = nodes_[provider].hosted.extract(id);
      node.mapped().home = as;
      node.mapped().virtual_server_for.reset();
      nodes_[as].hosted.insert(std::move(node));
      directory_[id] = as;
      for (const auto& [anchor, level] : nodes_[as].hosted.at(id).anchors) {
        auto it = nodes_[anchor].ring.find(id);
        if (it != nodes_[anchor].ring.end()) it->second = as;
      }
      ++stats.messages;
      stats.bytes += wire::msg::control_wire_size(wire::msg::RingMerge{
          .id = id, .home_as = as, .anchor_as = provider, .op = 0});
    }
    virtual_server_host_.erase(vs);
    reindex_as(provider);
    reindex_as(as);
    reanchor_all(stats);
    sim_.counters().add(sim::MsgCategory::kRepair, stats.messages);
  sim_.counters().add_bytes(sim::MsgCategory::kRepair, stats.bytes);
    return stats;
  }

  // Rejoin the IDs that were hosted here.
  std::vector<std::pair<Identity, JoinStrategy>> rejoin;
  for (const auto& [id, vn] : nodes_[as].hosted) {
    const auto it = identities_.find(id);
    if (it != identities_.end()) {
      rejoin.emplace_back(it->second, strategies_.at(id));
    }
  }
  nodes_[as].hosted.clear();
  nodes_[as].known.clear();
  for (auto& [ident, strategy] : rejoin) {
    identities_.erase(ident.id());
    strategies_.erase(ident.id());
    const InterJoinStats js = join_host(ident, as, strategy);
    stats.messages += js.messages;
  }
  // IDs elsewhere whose up-hierarchies regained this AS re-register and
  // re-derive pointers (zero-ID style convergence at each level).
  reanchor_all(stats);
  return stats;
}

InterRepairStats InterNetwork::fail_link(AsIndex a, AsIndex b) {
  InterRepairStats stats;
  base_copy_.set_link_up(a, b, false);
  work_.set_link_up(a, b, false);
  masks_valid_ = false;
  reanchor_all(stats);
  sim_.counters().add(sim::MsgCategory::kRepair, stats.messages);
  sim_.counters().add_bytes(sim::MsgCategory::kRepair, stats.bytes);
  return stats;
}

InterRepairStats InterNetwork::restore_link(AsIndex a, AsIndex b) {
  InterRepairStats stats;
  base_copy_.set_link_up(a, b, true);
  work_.set_link_up(a, b, true);
  masks_valid_ = false;
  // Zero-ID style reconvergence at each level: registrations and pointers
  // re-derive over the restored graph.
  reanchor_all(stats);
  sim_.counters().add(sim::MsgCategory::kRepair, stats.messages);
  sim_.counters().add_bytes(sim::MsgCategory::kRepair, stats.bytes);
  return stats;
}

// ---------------------------------------------------------------------------
// introspection

std::optional<AsIndex> InterNetwork::home_of(const NodeId& id) const {
  const auto it = directory_.find(id);
  if (it == directory_.end()) return std::nullopt;
  return it->second;
}

const InterVNode* InterNetwork::find_vnode(const NodeId& id) const {
  const auto home = home_of(id);
  if (!home.has_value()) return nullptr;
  const auto it = nodes_[*home].hosted.find(id);
  return it == nodes_[*home].hosted.end() ? nullptr : &it->second;
}

bool InterNetwork::verify_rings(std::string* err,
                                std::size_t max_anchors) const {
  std::size_t checked = 0;
  for (AsIndex anchor = 0; anchor < work_.as_count(); ++anchor) {
    const auto& ring = nodes_[anchor].ring;
    if (ring.size() < 2 || !work_.as_up(anchor)) continue;
    if (max_anchors > 0 && checked >= max_anchors) break;
    ++checked;
    for (auto it = ring.begin(); it != ring.end(); ++it) {
      const auto& [id, home] = *it;
      const auto expect = ring_succ(anchor, id);
      const auto hv = nodes_[home].hosted.find(id);
      if (hv == nodes_[home].hosted.end()) {
        if (err != nullptr) {
          std::ostringstream os;
          os << "ring@" << anchor << " lists " << id << " but AS " << home
             << " does not host it";
          *err = os.str();
        }
        return false;
      }
      // Derived successor at this level: closest target among pointers
      // anchored within subtree(anchor) whose target is itself a member of
      // this ring.  (With mixed join strategies, lower rings are not
      // subsets of higher ones -- e.g. a multihomed ID skips virtual-AS
      // rings -- so the membership filter is required.)
      std::optional<NodeId> derived;
      for (const LevelPointer& p : hv->second.successors) {
        if (!(is_ancestor(anchor, p.anchor) || p.anchor == anchor)) continue;
        if (!ring.contains(p.target)) continue;
        if (!derived.has_value() ||
            NodeId::distance_cw(id, p.target) <
                NodeId::distance_cw(id, *derived)) {
          derived = p.target;
        }
      }
      if (!expect.has_value()) continue;
      if (!derived.has_value() || *derived != expect->first) {
        if (err != nullptr) {
          std::ostringstream os;
          os << "ring@" << anchor << " member " << id
             << " derived successor mismatch (expected " << expect->first;
          if (derived.has_value()) os << ", got " << *derived;
          os << ")";
          *err = os.str();
        }
        return false;
      }
    }
  }
  return true;
}

std::uint64_t InterNetwork::total_pointer_count() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) {
    for (const auto& [id, vn] : node.hosted) n += vn.successors.size();
  }
  return n;
}

std::uint64_t InterNetwork::total_finger_count() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) {
    for (const auto& [id, vn] : node.hosted) n += vn.fingers.size();
  }
  return n;
}

double InterNetwork::mean_state_bits_per_as() const {
  std::uint64_t bits = 0;
  std::size_t live = 0;
  for (AsIndex a = 0; a < work_.as_count(); ++a) {
    if (!work_.as_up(a) || work_.is_virtual(a)) continue;
    ++live;
    const auto& node = nodes_[a];
    for (const auto& [id, vn] : node.hosted) {
      bits += 128;  // the resident ID
      for (const LevelPointer& p : vn.successors) {
        bits += 128 + 32 * static_cast<std::uint64_t>(p.route.size());
      }
      for (const Finger& f : vn.fingers) {
        bits += 128 + 32 * static_cast<std::uint64_t>(f.route.size());
      }
    }
    bits += 160 * static_cast<std::uint64_t>(node.ring.size());
    bits += 160 * static_cast<std::uint64_t>(node.cache.size());
  }
  return live == 0 ? 0.0 : static_cast<double>(bits) / static_cast<double>(live);
}

double InterNetwork::mean_bloom_bits_per_as() const {
  std::uint64_t bits = 0;
  std::size_t live = 0;
  for (AsIndex a = 0; a < work_.as_count(); ++a) {
    if (!work_.as_up(a) || work_.is_virtual(a)) continue;
    ++live;
    if (nodes_[a].subtree_bloom != nullptr) {
      bits += nodes_[a].subtree_bloom->bit_count();
    }
  }
  return live == 0 ? 0.0 : static_cast<double>(bits) / static_cast<double>(live);
}

}  // namespace rofl::inter
