#include "rofl/router.hpp"

#include <algorithm>
#include <cassert>

#include "proto/ring.hpp"

namespace rofl::intra {

Router::Router(NodeIndex index, Identity identity, std::size_t cache_capacity)
    : index_(index), identity_(std::move(identity)), cache_(cache_capacity) {}

VirtualNode* Router::add_vnode(VirtualNode vn) {
  vn.home = index_;
  const NodeId id = vn.id;
  auto [stored, inserted] = vnodes_.try_emplace(id, std::move(vn));
  if (!inserted) return nullptr;
  // Ephemeral hosts never serve as anyone's successor or predecessor
  // (section 2.2), so they stay out of the greedy index entirely; packets
  // for them stop at the predecessor's backpointer.
  if (stored->host_class != HostClass::kEphemeral) {
    index_ptr(id, index_, /*resident=*/true);
    for (const NeighborPtr& s : stored->successors) {
      index_ptr(s.id, s.host, /*resident=*/false);
    }
  }
  return stored;
}

void Router::remove_vnode(const NodeId& id) {
  if (!vnodes_.erase(id)) return;
  // Full rebuild keeps the resident flag exact even when the removed ID was
  // also some co-resident vnode's successor.
  reindex_vnode(id);
}

VirtualNode* Router::find_vnode(const NodeId& id) { return vnodes_.find(id); }

const VirtualNode* Router::find_vnode(const NodeId& id) const {
  return vnodes_.find(id);
}

void Router::reindex_vnode(const NodeId& id) {
  // Successor sets are small (successor-group size), so rebuild the whole
  // index contribution of this vnode: drop all non-resident refs we can't
  // attribute, which requires a full rebuild of the index.  Cheaper: rebuild
  // from scratch over all vnodes -- still O(resident * group) and only done
  // on ring maintenance, not on forwarding.
  known_ids_.clear();
  known_ptrs_.clear();
  for (const auto& [vid, vn] : vnodes_) {
    if (vn.host_class == HostClass::kEphemeral) continue;
    index_ptr(vid, index_, /*resident=*/true);
    for (const NeighborPtr& s : vn.successors) {
      index_ptr(s.id, s.host, /*resident=*/false);
    }
  }
  (void)id;
}

void Router::add_ephemeral_backpointer(const NodeId& id, NodeIndex gateway) {
  ephemerals_.insert_or_assign(id, gateway);
}

void Router::remove_ephemeral_backpointer(const NodeId& id) {
  ephemerals_.erase(id);
}

std::optional<NodeIndex> Router::ephemeral_gateway(const NodeId& id) const {
  const NodeIndex* gw = ephemerals_.find(id);
  if (gw == nullptr) return std::nullopt;
  return *gw;
}

void Router::eytz_fill(std::size_t& next_sorted, std::size_t k) const {
  if (k >= eytz_ids_.size()) return;
  eytz_fill(next_sorted, 2 * k);
  eytz_ids_[k] = known_ids_[next_sorted];
  eytz_pos_[k] = static_cast<std::uint32_t>(next_sorted);
  ++next_sorted;
  eytz_fill(next_sorted, 2 * k + 1);
}

void Router::rebuild_eytzinger() const {
  eytz_ids_.resize(known_ids_.size() + 1);
  eytz_pos_.resize(known_ids_.size() + 1);
  std::size_t next_sorted = 0;
  eytz_fill(next_sorted, 1);
  eytz_dirty_ = false;
}

std::optional<Candidate> Router::vn_best_match(const NodeId& dest) const {
  const std::size_t n = known_ids_.size();
  if (n == 0) return std::nullopt;
  if (eytz_dirty_) rebuild_eytzinger();
  // Largest indexed ID <= dest, wrapping to the largest overall: the ID
  // with minimal clockwise distance to dest.  Branch-free Eytzinger
  // descent: remember the last node we stepped right past.
  const NodeId* t = eytz_ids_.data();
  std::size_t k = 1;
  std::size_t best = 0;  // eytz index of largest id <= dest; 0 = none yet
  while (k <= n) {
#if defined(__GNUC__) || defined(__clang__)
    // Grandchildren 4k..4k+3 are contiguous: one line of 16-byte NodeIds.
    __builtin_prefetch(t + ((4 * k < n) ? 4 * k : 0));
#endif
    const bool le = !(dest < t[k]);
    best = le ? k : best;
    k = 2 * k + static_cast<std::size_t>(le);
  }
  const std::size_t pos = (best == 0) ? n - 1 : eytz_pos_[best];
  const IndexedPtr& p = known_ptrs_[pos];
  return Candidate{known_ids_[pos], p.host, p.resident};
}

bool Router::hosts(const NodeId& dest) const { return vnodes_.contains(dest); }

VirtualNode* Router::predecessor_vnode_of(const NodeId& id) {
  for (auto& [vid, vn] : vnodes_) {
    if (vn.host_class == HostClass::kEphemeral) continue;
    const NeighborPtr* succ = vn.first_successor();
    if (succ == nullptr) continue;
    if (proto::is_predecessor_of(vid, id, succ->id)) return &vn;
  }
  return nullptr;
}

std::size_t Router::state_entries() const {
  std::size_t n = cache_.size();
  for (const auto& [id, vn] : vnodes_) {
    n += 1 + vn.successors.size() + (vn.predecessor.has_value() ? 1 : 0);
  }
  n += ephemerals_.size();
  return n;
}

void Router::index_ptr(const NodeId& id, NodeIndex host, bool resident) {
  const auto it = std::lower_bound(known_ids_.begin(), known_ids_.end(), id);
  const std::size_t pos = static_cast<std::size_t>(it - known_ids_.begin());
  if (it != known_ids_.end() && *it == id) {
    IndexedPtr& p = known_ptrs_[pos];
    ++p.refs;
    if (resident) {
      p.resident = true;
      p.host = host;
    }
    return;
  }
  known_ids_.insert(it, id);
  known_ptrs_.insert(known_ptrs_.begin() + static_cast<std::ptrdiff_t>(pos),
                     IndexedPtr{host, resident, 1});
  eytz_dirty_ = true;  // sorted positions shifted; mirror rebuilt on lookup
}

}  // namespace rofl::intra
