// stats.hpp -- statistics helpers for the evaluation harness.
//
// The paper's figures are CDFs, moving averages, and per-bucket aggregates;
// these helpers compute them so each bench binary only describes its
// workload.
#pragma once

#include <cstddef>
#include <vector>

namespace rofl {

/// Accumulates scalar samples and answers summary queries.  Percentile and
/// CDF queries sort lazily.
class SampleSet {
 public:
  void add(double v);
  void add_all(const std::vector<double>& vs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

  /// p in [0,1]; nearest-rank percentile.
  [[nodiscard]] double percentile(double p) const;

  /// Empirical CDF evaluated at `x`: fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;

  /// Returns (value, cumulative fraction) pairs at `points` evenly spaced
  /// ranks -- the series the paper plots as its CDFs.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_series(
      std::size_t points) const;

  [[nodiscard]] const std::vector<double>& raw() const { return samples_; }

 private:
  void ensure_sorted() const;
  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Moving average over the trailing `window` samples (figure 8a plots "a
/// moving average of the join overhead over the last 200 joins").
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  void add(double v);
  [[nodiscard]] double value() const;
  [[nodiscard]] bool full() const { return count_ >= buf_.size(); }

 private:
  std::vector<double> buf_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace rofl
