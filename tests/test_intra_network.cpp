// Integration tests for the intradomain ROFL protocol engine (sections 2.2,
// 3): joins, greedy forwarding, failure handling, and partition repair, all
// over a small Rocketfuel-like ISP.
#include "rofl/network.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

#include <set>

namespace rofl::intra {
namespace {

struct TestNet {
  graph::IspTopology topo;
  std::unique_ptr<Network> net;
  std::vector<Identity> hosts;

  explicit TestNet(std::size_t routers = 30, std::size_t pops = 5,
                   Config cfg = {}, std::uint64_t seed = 1234) {
    Rng trng(seed);
    graph::IspParams p;
    p.router_count = routers;
    p.pop_count = pops;
    topo = graph::make_isp_topology(p, trng);
    net = std::make_unique<Network>(&topo, cfg, seed + 1);
  }

  NodeId join(NodeIndex gw, HostClass cls = HostClass::kStable) {
    Identity ident = Identity::generate(net->rng());
    const JoinStats js = net->join_host(ident, gw, cls);
    EXPECT_TRUE(js.ok);
    hosts.push_back(ident);
    return ident.id();
  }

  std::vector<NodeId> join_many(std::size_t n) {
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      const auto gw =
          static_cast<NodeIndex>(net->rng().index(net->router_count()));
      ids.push_back(join(gw));
    }
    return ids;
  }
};

TEST(IntraDeterminism, ParallelSpfReproducesSerialRunExactly) {
  // Acceptance gate for the parallel SPF substrate: with a fixed seed, a
  // network repairing topology failures over the worker pool must produce
  // byte-identical routing tables (directory, ring state, route outcomes)
  // and identical per-category message counters to the serial path.
  Config serial_cfg;
  serial_cfg.spf_threads = 0;
  Config parallel_cfg;
  parallel_cfg.spf_threads = 4;
  TestNet a(64, 8, serial_cfg, 999);
  TestNet b(64, 8, parallel_cfg, 999);

  const auto ids_a = a.join_many(80);
  const auto ids_b = b.join_many(80);
  ASSERT_EQ(ids_a, ids_b);

  // Drive the repair machinery (where recompute_all_spf runs) identically.
  const RepairStats ra1 = a.net->fail_router(3);
  const RepairStats rb1 = b.net->fail_router(3);
  EXPECT_EQ(ra1.messages, rb1.messages);
  EXPECT_EQ(ra1.ids_rejoined, rb1.ids_rejoined);
  EXPECT_EQ(ra1.pointers_torn, rb1.pointers_torn);
  const RepairStats ra2 = a.net->fail_link(10, a.topo.graph.neighbors(10).front().to);
  const RepairStats rb2 = b.net->fail_link(10, b.topo.graph.neighbors(10).front().to);
  EXPECT_EQ(ra2.messages, rb2.messages);
  a.net->restore_router(3);
  b.net->restore_router(3);

  // Routing tables: same directory, same ring state, same greedy outcomes.
  ASSERT_EQ(a.net->directory(), b.net->directory());
  std::string err;
  EXPECT_TRUE(a.net->verify_rings(&err)) << err;
  EXPECT_TRUE(b.net->verify_rings(&err)) << err;
  for (std::size_t i = 0; i < ids_a.size(); i += 5) {
    const auto src = static_cast<NodeIndex>((i * 13) % a.net->router_count());
    const RouteStats sa = a.net->route(src, ids_a[i]);
    const RouteStats sb = b.net->route(src, ids_b[i]);
    EXPECT_EQ(sa.delivered, sb.delivered);
    EXPECT_EQ(sa.physical_hops, sb.physical_hops);
    EXPECT_EQ(sa.ring_hops, sb.ring_hops);
    EXPECT_EQ(sa.shortest_hops, sb.shortest_hops);
  }

  // Figure CSVs derive from these counters; they must match category by
  // category, not just in total.
  for (std::size_t c = 0; c < sim::kMsgCategoryCount; ++c) {
    const auto cat = static_cast<sim::MsgCategory>(c);
    EXPECT_EQ(a.net->simulator().counters().get(cat),
              b.net->simulator().counters().get(cat))
        << sim::to_string(cat);
  }
}

TEST(IntraBootstrap, RouterRingIsCorrect) {
  TestNet t;
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  EXPECT_EQ(t.net->directory().size(), t.net->router_count());
}

TEST(IntraBootstrap, DefaultVnodesHaveSuccessorGroups) {
  TestNet t;
  for (NodeIndex r = 0; r < t.net->router_count(); ++r) {
    const auto& vnodes = t.net->router(r).vnodes();
    ASSERT_EQ(vnodes.size(), 1u);
    const VirtualNode& vn = vnodes.begin()->second;
    EXPECT_TRUE(vn.is_default);
    EXPECT_EQ(vn.successors.size(), t.net->config().successor_group);
    EXPECT_TRUE(vn.predecessor.has_value());
  }
}

TEST(IntraJoin, SingleHostJoinSucceedsAndRingHolds) {
  TestNet t;
  const NodeId id = t.join(0);
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  EXPECT_EQ(t.net->hosting_router(id), 0u);
}

TEST(IntraJoin, ManyJoinsKeepRingCorrect) {
  TestNet t;
  t.join_many(200);
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  EXPECT_EQ(t.net->directory().size(), t.net->router_count() + 200);
}

TEST(IntraJoin, DuplicateIdRejected) {
  TestNet t;
  Identity ident = Identity::generate(t.net->rng());
  EXPECT_TRUE(t.net->join_host(ident, 0).ok);
  EXPECT_FALSE(t.net->join_host(ident, 1).ok);
}

TEST(IntraJoin, JoinAtDownRouterFails) {
  TestNet t;
  t.net->map().fail_node(3);
  Identity ident = Identity::generate(t.net->rng());
  EXPECT_FALSE(t.net->join_host(ident, 3).ok);
}

TEST(IntraJoin, JoinOverheadIsBounded) {
  // Paper: join overhead is roughly four messages times the network
  // diameter; check the same order of magnitude.
  TestNet t;
  const auto diameter = t.topo.graph.diameter_hops(t.topo.router_count());
  SampleSet msgs;
  for (int i = 0; i < 50; ++i) {
    Identity ident = Identity::generate(t.net->rng());
    const auto gw =
        static_cast<NodeIndex>(t.net->rng().index(t.net->router_count()));
    const JoinStats js = t.net->join_host(ident, gw);
    ASSERT_TRUE(js.ok);
    msgs.add(static_cast<double>(js.messages));
  }
  EXPECT_LT(msgs.mean(), 12.0 * diameter);
  EXPECT_GT(msgs.mean(), 0.0);
}

TEST(IntraJoin, SuccessorGroupsAreFullyPopulated) {
  TestNet t;
  t.join_many(50);
  const std::size_t k = t.net->config().successor_group;
  for (NodeIndex r = 0; r < t.net->router_count(); ++r) {
    for (const auto& [id, vn] : t.net->router(r).vnodes()) {
      if (vn.host_class == HostClass::kEphemeral) continue;
      EXPECT_EQ(vn.successors.size(), k) << "vnode " << id;
      EXPECT_TRUE(vn.predecessor.has_value());
    }
  }
}

TEST(IntraJoin, SuccessorGroupsMatchGlobalOrder) {
  TestNet t;
  t.join_many(60);
  // Build the oracle ring.
  std::vector<std::pair<NodeId, NodeIndex>> ring(t.net->directory().begin(),
                                                 t.net->directory().end());
  const std::size_t n = ring.size();
  const std::size_t k = t.net->config().successor_group;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& [id, host] = ring[i];
    const VirtualNode* vn = t.net->router(host).find_vnode(id);
    ASSERT_NE(vn, nullptr);
    for (std::size_t s = 0; s < k && s < vn->successors.size(); ++s) {
      EXPECT_EQ(vn->successors[s].id, ring[(i + s + 1) % n].first)
          << "vnode " << id << " successor " << s;
    }
  }
}

TEST(IntraRoute, DeliversBetweenAllPairsSample) {
  TestNet t;
  const auto ids = t.join_many(100);
  std::string err;
  ASSERT_TRUE(t.net->verify_rings(&err)) << err;
  for (int i = 0; i < 200; ++i) {
    const NodeId dest = ids[t.net->rng().index(ids.size())];
    const auto src =
        static_cast<NodeIndex>(t.net->rng().index(t.net->router_count()));
    const RouteStats rs = t.net->route(src, dest);
    EXPECT_TRUE(rs.delivered) << "to " << dest << " from " << src;
  }
}

TEST(IntraRoute, DeliveryToResidentIsImmediate) {
  TestNet t;
  const NodeId id = t.join(2);
  const RouteStats rs = t.net->route(2, id);
  EXPECT_TRUE(rs.delivered);
  EXPECT_EQ(rs.physical_hops, 0u);
}

TEST(IntraRoute, NonexistentIdNotDelivered) {
  TestNet t;
  t.join_many(20);
  // A fresh ID that never joined.
  Rng other(999);
  const Identity ghost = Identity::generate(other);
  const RouteStats rs = t.net->route(0, ghost.id());
  EXPECT_FALSE(rs.delivered);
}

TEST(IntraRoute, CacheReducesStretch) {
  Config small;
  small.cache_capacity = 0;
  Config big;
  big.cache_capacity = 4096;
  TestNet t_small(30, 5, small, 777);
  TestNet t_big(30, 5, big, 777);

  auto measure = [](TestNet& t) {
    const auto ids = t.join_many(150);
    SampleSet stretch;
    for (int i = 0; i < 400; ++i) {
      const NodeId dest = ids[t.net->rng().index(ids.size())];
      const auto src =
          static_cast<NodeIndex>(t.net->rng().index(t.net->router_count()));
      const RouteStats rs = t.net->route(src, dest);
      if (rs.delivered && rs.shortest_hops > 0) stretch.add(rs.stretch());
    }
    return stretch.mean();
  };
  const double s_small = measure(t_small);
  const double s_big = measure(t_big);
  EXPECT_LT(s_big, s_small);
  EXPECT_GE(s_big, 1.0);
}

TEST(IntraRoute, StretchIsAtLeastOne) {
  TestNet t;
  const auto ids = t.join_many(50);
  for (int i = 0; i < 100; ++i) {
    const NodeId dest = ids[t.net->rng().index(ids.size())];
    const auto src =
        static_cast<NodeIndex>(t.net->rng().index(t.net->router_count()));
    const RouteStats rs = t.net->route(src, dest);
    if (rs.delivered && rs.shortest_hops > 0) {
      EXPECT_GE(rs.stretch(), 1.0);
    }
  }
}

TEST(IntraEphemeral, JoinAndRoute) {
  TestNet t;
  t.join_many(30);
  const NodeId eid = t.join(4, HostClass::kEphemeral);
  std::string err;
  // Ephemeral hosts are not ring members; ring must still verify.
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  const RouteStats rs = t.net->route(9, eid);
  EXPECT_TRUE(rs.delivered);
}

TEST(IntraEphemeral, NeverAppearsInSuccessorLists) {
  TestNet t;
  t.join_many(30);
  const NodeId eid = t.join(4, HostClass::kEphemeral);
  for (NodeIndex r = 0; r < t.net->router_count(); ++r) {
    for (const auto& [id, vn] : t.net->router(r).vnodes()) {
      for (const NeighborPtr& s : vn.successors) {
        EXPECT_NE(s.id, eid);
      }
      if (vn.predecessor.has_value()) {
        EXPECT_NE(vn.predecessor->id, eid);
      }
    }
  }
}

TEST(IntraEphemeral, SurvivesInterveningJoin) {
  // A stable host joining between the ephemeral ID and its predecessor must
  // inherit the backpointer, or routing breaks.
  TestNet t;
  t.join_many(40);
  const NodeId eid = t.join(4, HostClass::kEphemeral);
  t.join_many(60);  // some of these land between pred and eid
  const RouteStats rs = t.net->route(1, eid);
  EXPECT_TRUE(rs.delivered);
}

TEST(IntraFail, HostFailureSplicesRing) {
  TestNet t;
  const auto ids = t.join_many(50);
  const RepairStats rs = t.net->fail_host(ids[10]);
  EXPECT_GT(rs.messages, 0u);
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  EXPECT_FALSE(t.net->route(0, ids[10]).delivered);
  // Everyone else still reachable.
  for (int i = 0; i < 30; ++i) {
    const NodeId dest = ids[t.net->rng().index(ids.size())];
    if (dest == ids[10]) continue;
    EXPECT_TRUE(t.net->route(0, dest).delivered);
  }
}

TEST(IntraFail, GracefulLeaveCheaperThanFailure) {
  TestNet t1(30, 5, {}, 42);
  TestNet t2(30, 5, {}, 42);
  const auto ids1 = t1.join_many(50);
  const auto ids2 = t2.join_many(50);
  const RepairStats fail = t1.net->fail_host(ids1[7]);
  const RepairStats leave = t2.net->leave_host(ids2[7]);
  EXPECT_LE(leave.messages, fail.messages);
}

TEST(IntraFail, SequentialHostFailuresKeepRing) {
  TestNet t;
  auto ids = t.join_many(60);
  Rng chooser(5);
  for (int i = 0; i < 25; ++i) {
    const std::size_t victim = chooser.index(ids.size());
    t.net->fail_host(ids[victim]);
    ids.erase(ids.begin() + static_cast<long>(victim));
  }
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  for (const NodeId& id : ids) {
    EXPECT_TRUE(t.net->route(0, id).delivered);
  }
}

TEST(IntraFail, RouterFailureRehomesHosts) {
  TestNet t;
  const auto ids = t.join_many(60);
  // Count hosts homed at router 5 before the crash.
  std::size_t at5 = 0;
  for (const NodeId& id : ids) {
    if (t.net->hosting_router(id) == 5u) ++at5;
  }
  const RepairStats rs = t.net->fail_router(5);
  EXPECT_EQ(rs.ids_rejoined, at5);
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  // All hosts (including the rehomed ones) reachable from a live router.
  for (const NodeId& id : ids) {
    EXPECT_TRUE(t.net->route(10, id).delivered) << id;
    EXPECT_NE(t.net->hosting_router(id), 5u);
  }
}

TEST(IntraFail, RouterRestoreRejoinsRing) {
  TestNet t;
  t.join_many(30);
  t.net->fail_router(5);
  const RepairStats rs = t.net->restore_router(5);
  (void)rs;
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  EXPECT_EQ(t.net->hosting_router(t.net->router(5).router_id()), 5u);
}

TEST(IntraFail, LinkFailureWithoutPartitionKeepsDelivery) {
  TestNet t;
  const auto ids = t.join_many(50);
  // Fail one redundant link (pick an edge whose removal keeps connectivity).
  bool failed_one = false;
  for (NodeIndex u = 0; u < t.topo.router_count() && !failed_one; ++u) {
    for (const auto& e : t.topo.graph.neighbors(u)) {
      if (u > e.to) continue;
      t.topo.graph.set_link_up(u, e.to, false);
      const bool still = t.topo.graph.connected();
      t.topo.graph.set_link_up(u, e.to, true);
      if (still) {
        t.net->fail_link(u, e.to);
        failed_one = true;
        break;
      }
    }
  }
  ASSERT_TRUE(failed_one);
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  for (int i = 0; i < 40; ++i) {
    const NodeId dest = ids[t.net->rng().index(ids.size())];
    const auto src =
        static_cast<NodeIndex>(t.net->rng().index(t.net->router_count()));
    EXPECT_TRUE(t.net->route(src, dest).delivered);
  }
}

TEST(IntraRepair, NoopOnHealthyNetwork) {
  // Repair must charge (almost) nothing when nothing failed -- pointer state
  // is already canonical after joins.
  TestNet t;
  t.join_many(80);
  const RepairStats rs = t.net->repair_partitions();
  EXPECT_EQ(rs.ids_rejoined, 0u);
  EXPECT_EQ(rs.pointers_torn, 0u);
}

TEST(IntraPartition, PopDisconnectAndHeal) {
  TestNet t(40, 8);
  const auto ids = t.join_many(120);

  // Disconnect PoP 3 by failing all its external links.
  const auto& pop = t.topo.pops[3];
  const std::set<NodeIndex> pop_set(pop.begin(), pop.end());
  std::vector<std::pair<NodeIndex, NodeIndex>> cut;
  for (const NodeIndex r : pop) {
    for (const auto& e : t.topo.graph.neighbors(r)) {
      if (!pop_set.contains(e.to)) cut.emplace_back(r, e.to);
    }
  }
  ASSERT_FALSE(cut.empty());
  for (const auto& [u, v] : cut) t.net->map().fail_link(u, v);
  const RepairStats split = t.net->repair_partitions();
  (void)split;

  // Both sides now have consistent rings.
  std::string err;
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;

  // Delivery works within each side.
  std::vector<NodeId> inside, outside;
  for (const NodeId& id : ids) {
    const auto host = t.net->hosting_router(id);
    ASSERT_TRUE(host.has_value());
    (pop_set.contains(*host) ? inside : outside).push_back(id);
  }
  if (!inside.empty()) {
    EXPECT_TRUE(t.net->route(*pop_set.begin(), inside.front()).delivered);
  }
  if (!outside.empty()) {
    NodeIndex out_router = 0;
    while (pop_set.contains(out_router)) ++out_router;
    EXPECT_TRUE(t.net->route(out_router, outside.front()).delivered);
    // Cross-partition delivery must fail.
    if (!inside.empty()) {
      EXPECT_FALSE(t.net->route(out_router, inside.front()).delivered);
    }
  }

  // Heal and verify the rings merge back into one.
  for (const auto& [u, v] : cut) t.net->map().restore_link(u, v);
  const RepairStats heal = t.net->repair_partitions();
  EXPECT_TRUE(t.net->verify_rings(&err)) << err;
  EXPECT_GT(heal.messages + split.messages, 0u);

  // Full reachability is restored (invariant (a) of section 3.2).
  for (int i = 0; i < 60; ++i) {
    const NodeId dest = ids[t.net->rng().index(ids.size())];
    const auto src =
        static_cast<NodeIndex>(t.net->rng().index(t.net->router_count()));
    EXPECT_TRUE(t.net->route(src, dest).delivered);
  }
}

TEST(IntraMemory, StateGrowsWithHostsAndCacheBounded) {
  Config cfg;
  cfg.cache_capacity = 64;
  TestNet t(30, 5, cfg);
  const double before = t.net->mean_state_entries();
  t.join_many(100);
  const double after = t.net->mean_state_entries();
  EXPECT_GT(after, before);
  for (NodeIndex r = 0; r < t.net->router_count(); ++r) {
    EXPECT_LE(t.net->router(r).cache().size(), 64u);
  }
  EXPECT_GT(t.net->resident_state_bits(), 0u);
}

TEST(IntraCounters, JoinTrafficIsAccounted) {
  TestNet t;
  const auto before = t.net->simulator().counters().get(sim::MsgCategory::kJoin);
  t.join_many(10);
  EXPECT_GT(t.net->simulator().counters().get(sim::MsgCategory::kJoin), before);
}

// Churn property sweep: interleaved joins and failures at several scales
// must always leave a correct ring and full reachability.
class IntraChurn : public ::testing::TestWithParam<int> {};

TEST_P(IntraChurn, RingSurvivesChurn) {
  const int ops = GetParam();
  TestNet t(25, 5, {}, 2024 + static_cast<std::uint64_t>(ops));
  std::vector<NodeId> live;
  Rng chooser(static_cast<std::uint64_t>(ops) * 7 + 1);
  for (int i = 0; i < ops; ++i) {
    if (live.size() < 5 || chooser.chance(0.6)) {
      Identity ident = Identity::generate(t.net->rng());
      const auto gw =
          static_cast<NodeIndex>(chooser.index(t.net->router_count()));
      if (t.net->join_host(ident, gw).ok) live.push_back(ident.id());
    } else {
      const std::size_t victim = chooser.index(live.size());
      t.net->fail_host(live[victim]);
      live.erase(live.begin() + static_cast<long>(victim));
    }
  }
  std::string err;
  ASSERT_TRUE(t.net->verify_rings(&err)) << err;
  for (const NodeId& id : live) {
    EXPECT_TRUE(t.net->route(0, id).delivered);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, IntraChurn,
                         ::testing::Values(20, 60, 120, 250));

// Scans every router (live or crashed) for any trace of `id`: directory
// entry, resident vnode, successor/predecessor pointer, pointer-cache entry,
// or ephemeral backpointer.  Returns a description of the first hit.
std::string find_traces_of(const Network& net, const NodeId& id) {
  if (net.directory().contains(id)) return "directory";
  for (NodeIndex i = 0; i < net.router_count(); ++i) {
    const Router& r = net.router(i);
    if (r.find_vnode(id) != nullptr) return "vnode@" + std::to_string(i);
    for (const auto& [vid, vn] : r.vnodes()) {
      for (const NeighborPtr& s : vn.successors) {
        if (s.id == id) return "successor@" + std::to_string(i);
      }
      if (vn.predecessor.has_value() && vn.predecessor->id == id) {
        return "predecessor@" + std::to_string(i);
      }
    }
    if (r.cache().find(id) != nullptr) return "cache@" + std::to_string(i);
    if (r.ephemeral_gateway(id).has_value()) {
      return "backpointer@" + std::to_string(i);
    }
  }
  return "";
}

TEST(IntraLeave, RouteAfterLeaveFindsNoStaleState) {
  // Regression for the leave-time cache-coherence bug: a graceful leave must
  // purge the departed ID from every router's pointer cache and ring state,
  // so a later route() fails cleanly instead of chasing a stale pointer.
  TestNet t(30, 5, {}, 4242);
  t.join_many(40);
  const NodeId victim = t.join(7);

  // Warm caches along many paths toward the victim.
  for (NodeIndex src = 0; src < t.net->router_count(); ++src) {
    EXPECT_TRUE(t.net->route(src, victim).delivered);
  }

  (void)t.net->leave_host(victim);

  EXPECT_EQ(find_traces_of(*t.net, victim), "");
  for (NodeIndex src = 0; src < t.net->router_count(); src += 3) {
    EXPECT_FALSE(t.net->route(src, victim).delivered) << "src " << src;
  }
  // The survivors' ring must still be canonical and fully routable.
  std::string err;
  ASSERT_TRUE(t.net->verify_rings(&err, /*strict=*/true)) << err;
  for (const auto& [id, home] : t.net->directory()) {
    EXPECT_TRUE(t.net->route(0, id).delivered);
  }
}

TEST(IntraLeave, EphemeralLeaveRemovesBackpointerEverywhere) {
  TestNet t(30, 5, {}, 555);
  t.join_many(30);
  const NodeId eph = t.join(3, HostClass::kEphemeral);
  for (NodeIndex src = 0; src < t.net->router_count(); src += 2) {
    EXPECT_TRUE(t.net->route(src, eph).delivered);
  }

  (void)t.net->leave_host(eph);

  EXPECT_EQ(find_traces_of(*t.net, eph), "");
  EXPECT_FALSE(t.net->route(0, eph).delivered);
  std::string err;
  ASSERT_TRUE(t.net->verify_rings(&err, /*strict=*/true)) << err;
}

}  // namespace
}  // namespace rofl::intra
