// bgp_baseline.hpp -- BGP-policy baseline for the interdomain evaluation.
//
// Figure 8b plots "the stretch incurred today by BGP policies": the ratio of
// the shortest valley-free (Gao-Rexford) policy path to the shortest
// unconstrained AS path.  ROFL's own stretch is measured against the policy
// path (section 6.1, "we consider stretch to be the ratio of the traversed
// path to the path BGP would select"); this module supplies both quantities.
#pragma once

#include <optional>

#include "graph/as_topology.hpp"
#include "interdomain/policy.hpp"

namespace rofl::baselines {

/// Shortest unconstrained (policy-free) AS-hop distance, or nullopt if the
/// graph is partitioned.
[[nodiscard]] std::optional<std::uint32_t> shortest_as_hops(
    const graph::AsTopology& topo, graph::AsIndex src, graph::AsIndex dst);

/// BGP-policy path length (re-exported from the policy engine).
[[nodiscard]] inline std::optional<std::uint32_t> bgp_policy_hops(
    const graph::AsTopology& topo, graph::AsIndex src, graph::AsIndex dst) {
  return inter::bgp_policy_hops(topo, src, dst);
}

/// The figure-8b "BGP-policy" series: policy-path length over shortest-path
/// length for one pair.  nullopt when either is undefined or the pair is
/// trivial (src == dst).
[[nodiscard]] std::optional<double> bgp_policy_stretch(
    const graph::AsTopology& topo, graph::AsIndex src, graph::AsIndex dst);

}  // namespace rofl::baselines
