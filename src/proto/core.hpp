// core.hpp -- the sans-I/O intradomain protocol state machine.
//
// One router's worth of ROFL control-plane behavior -- the greedy
// predecessor-locate walk, join/splice with idempotent re-reply, pointer
// installs retried until acked, data-plane lookups, and clean departure --
// as a pure message-driven core.  The core consumes decoded
// wire::ControlMessage frames plus the clock value its driver passes in,
// and emits every effect (encoded frames, timer hints, retry telemetry,
// metrics) through the narrow proto::Env interface.  It opens no sockets,
// spawns no threads, reads no clock, and draws no randomness.
//
// net::LiveRouter is a thin driver over this core: transport pump in,
// on_frame()/tick() through, frames back out.  The loopback mesh drives it
// on a virtual clock, the UDP and spawn meshes on wall clocks -- the same
// object code runs in all three, which is what makes the section 6.3
// byte-parity gate and the cross-substrate equivalence test meaningful.
// The ring *decisions* the handlers make (predecessor tests, splice
// validity, the notify rule, join-reply construction, leave relinks) live
// one layer down in proto/ring.hpp, shared verbatim with intra::Network on
// the simulators.  DESIGN.md section 17 has the full layering.
//
// Wire conventions (identical to the pre-refactor LiveRouter):
//   Locate           purpose 0 = join walk, 2 = data-plane lookup probe;
//                    the requester's router id rides in the packet source
//                    label (NodeId::from_u64(router)).
//   PointerInstall   op=2 answers a locate (join or lookup, matched to its
//                    task by the trace nonce); op=1 is the set-predecessor
//                    install a splicer retries until acked.
//   JoinRequest /    the splice exchange; an empty successor set in the
//   JoinReply        reply is a redirect (the ring moved under the walk).
//   Repair           clean departure: op=1 re-points the surviving
//                    successor's predecessor, op=0 the surviving
//                    predecessor's successor; retried until acked.
//   Keepalive        seq echoes an install/relink nonce: the ack.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <span>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "proto/env.hpp"
#include "proto/ring.hpp"
#include "sim/faults.hpp"
#include "util/identity.hpp"
#include "util/node_id.hpp"
#include "wire/messages.hpp"

namespace rofl::proto {

/// One ring-resident virtual node homed on this router.
struct Vnode {
  NodeId id;
  NodeId succ;
  RouterId succ_owner = 0;
  NodeId pred;
  RouterId pred_owner = 0;
};

struct CoreConfig {
  RouterId self = 0;
  RouterId bootstrap = 0;          ///< where fresh locate walks start
  std::uint32_t fingers = 256;     ///< CompactFingers per JoinRequest (6.3)
  std::uint32_t max_outstanding = 8;  ///< concurrent joins (and lookups)
  sim::RetryPolicy retry{/*max_attempts=*/10, /*timeout_ms=*/40.0,
                         /*backoff=*/1.6, /*max_timeout_ms=*/500.0};
};

class Core {
 public:
  /// Registers this core's metrics in env.metrics() (identical names and
  /// order on every router -- the registry merge contract).
  Core(CoreConfig cfg, Env& env);

  /// Installs the bootstrap identity with self-looped pointers -- the
  /// one-node ring every walk can terminate against.  Call on exactly one
  /// router.
  void seed(const Identity& first);

  /// Queues one host identity this gateway will join into the ring.
  void enqueue_join(Identity ident);

  /// Queues one data-plane lookup: a Locate probe (purpose 2) walked over
  /// the live ring; the answer resolves the target id to its owning router.
  void enqueue_lookup(const NodeId& target);

  /// Starts a clean departure: computes the surviving-boundary relinks
  /// (proto::compute_leave_relinks), installs them with retried-until-acked
  /// Repair messages, and drops every resident vnode once all are acked.
  /// Serialize against joins: call only after the mesh has converged.
  void begin_leave(double now_ms);

  /// Decodes one received control frame and dispatches it.  Undecodable
  /// frames (CRC-rejected corruption) count as loss; retries recover.
  void on_frame(std::span<const std::uint8_t> frame, double now_ms);

  /// Timer pass: start queued joins/lookups up to the outstanding cap, fire
  /// retry deadlines.  Poll-driven drivers call this every step.
  void tick(double now_ms);

  /// True when no queued or in-flight work remains (joins, lookups,
  /// installs, leave relinks).
  [[nodiscard]] bool quiescent() const {
    return queued_.empty() && active_.empty() && installs_.empty() &&
           queued_lookups_.empty() && lookups_.empty() && relinks_.empty();
  }

  /// True once begin_leave() finished: every relink acked, vnodes dropped.
  [[nodiscard]] bool departed() const { return departed_; }

  [[nodiscard]] std::uint64_t joins_completed() const {
    return joins_completed_;
  }
  [[nodiscard]] std::uint64_t joins_queued_total() const {
    return joins_queued_total_;
  }
  [[nodiscard]] std::uint64_t lookups_completed() const {
    return lookups_completed_;
  }
  [[nodiscard]] std::uint64_t lookups_hit() const { return lookups_hit_; }

  [[nodiscard]] const std::map<NodeId, Vnode>& vnodes() const {
    return vnodes_;
  }

  /// Diagnostic snapshot of everything that keeps quiescent() false.
  void debug_dump(std::ostream& os) const;

 private:
  struct JoinTask {
    explicit JoinTask(Identity i) : ident(std::move(i)) {}
    Identity ident;
    NodeId target;
    std::uint64_t nonce = 0;
    enum class St : std::uint8_t { kLocating, kJoining } st = St::kLocating;
    RouterId locate_at = 0;  ///< router the current locate was sent to
    RouterId join_to = 0;    ///< predecessor owner the JoinRequest went to
    unsigned attempt = 0;
    double timeout_ms = 0.0;
    double deadline_ms = 0.0;
    double started_ms = 0.0;
  };

  /// A data-plane lookup probe awaiting its op=2 answer.
  struct LookupTask {
    NodeId target;
    std::uint64_t nonce = 0;
    RouterId at = 0;  ///< router the current probe was sent to
    unsigned attempt = 0;
    double timeout_ms = 0.0;
    double deadline_ms = 0.0;
    double started_ms = 0.0;
  };

  /// A set-predecessor install awaiting its Keepalive ack.
  struct PendingInstall {
    RouterId dst = 0;
    wire::msg::PointerInstall msg;
    unsigned attempt = 0;
    double timeout_ms = 0.0;
    double deadline_ms = 0.0;
  };

  /// A departure relink (Repair) awaiting its Keepalive ack.
  struct PendingRelink {
    RouterId dst = 0;
    wire::msg::Repair msg;
    unsigned attempt = 0;
    double timeout_ms = 0.0;
    double deadline_ms = 0.0;
  };

  void send_control(RouterId dst, const wire::msg::ControlMessage& m,
                    const NodeId& src, const NodeId& dst_id,
                    std::uint64_t trace_id, double now_ms);
  void start_locate(JoinTask& t, RouterId at, double now_ms);
  void send_join_request(JoinTask& t, double now_ms);
  void start_lookup(LookupTask& t, RouterId at, double now_ms);
  void on_locate(const wire::Packet& pkt, const wire::msg::Locate& m,
                 double now_ms);
  void on_join_request(const wire::Packet& pkt,
                       const wire::msg::JoinRequest& m, double now_ms);
  void on_join_reply(const wire::Packet& pkt, const wire::msg::JoinReply& m,
                     double now_ms);
  void on_pointer_install(const wire::Packet& pkt,
                          const wire::msg::PointerInstall& m, double now_ms);
  void on_repair(const wire::Packet& pkt, const wire::msg::Repair& m,
                 double now_ms);
  void on_keepalive(const wire::Packet& pkt, const wire::msg::Keepalive& m);
  void schedule_install(RouterId dst, const NodeId& subject,
                        const NodeId& neighbor, RouterId neighbor_owner,
                        double now_ms);
  void answer_locate(RouterId requester, const NodeId& target,
                     const NodeId& neighbor, RouterId neighbor_owner,
                     std::uint64_t trace_id, double now_ms);
  /// Local vnode with the smallest nonzero clockwise distance to `target`
  /// (proto::closest_predecessor over the resident map); nullptr when none.
  Vnode* best_predecessor(const NodeId& target);
  JoinTask* join_by_nonce(std::uint64_t nonce);
  LookupTask* lookup_by_nonce(std::uint64_t nonce);
  std::uint64_t next_nonce() {
    return (static_cast<std::uint64_t>(cfg_.self) << 40) | ++nonce_counter_;
  }
  void arm(double deadline_ms) { env_.on_timer_armed(deadline_ms); }

  CoreConfig cfg_;
  Env& env_;

  std::map<NodeId, Vnode> vnodes_;
  std::deque<Identity> queued_;
  std::vector<JoinTask> active_;
  std::deque<NodeId> queued_lookups_;
  std::vector<LookupTask> lookups_;
  std::unordered_map<std::uint64_t, PendingInstall> installs_;
  std::unordered_map<std::uint64_t, PendingRelink> relinks_;
  /// Encoded JoinReply per spliced id: the idempotent re-reply for
  /// retransmitted JoinRequests.
  std::unordered_map<NodeId, std::vector<std::uint8_t>> join_cache_;

  bool leaving_ = false;
  bool departed_ = false;

  std::uint64_t nonce_counter_ = 0;
  std::uint64_t joins_completed_ = 0;
  std::uint64_t joins_queued_total_ = 0;
  std::uint64_t lookups_completed_ = 0;
  std::uint64_t lookups_hit_ = 0;

  // MetricIds, registered in constructor order (identical across routers so
  // registries and timelines merge by dense id).
  obs::MetricId decode_failed_ = 0;
  obs::MetricId retrans_ = 0, acks_ = 0, redirects_ = 0, locate_steps_ = 0;
  obs::MetricId joins_done_id_ = 0, joins_rejected_ = 0;
  struct PerType {
    obs::MetricId msgs = 0;
    obs::MetricId bytes = 0;
  };
  std::unordered_map<std::uint8_t, PerType> per_type_;  // by PacketType
  obs::MetricId lookups_done_id_ = 0, lookups_hit_id_ = 0;
  obs::MetricId leave_relinks_ = 0;
  obs::MetricId join_latency_ = 0;    // histogram
  obs::MetricId lookup_latency_ = 0;  // histogram
};

}  // namespace rofl::proto
