#include "rofl/session.hpp"

#include <gtest/gtest.h>

namespace rofl::intra {
namespace {

struct Fix {
  graph::IspTopology topo;
  std::unique_ptr<Network> net;
  std::unique_ptr<SessionManager> sessions;

  explicit Fix(SessionConfig scfg = {}, std::uint64_t seed = 71) {
    Rng trng(seed);
    graph::IspParams p;
    p.router_count = 20;
    p.pop_count = 4;
    topo = graph::make_isp_topology(p, trng);
    net = std::make_unique<Network>(&topo, Config{}, seed + 1);
    sessions = std::make_unique<SessionManager>(*net, scfg);
    for (int i = 0; i < 20; ++i) (void)net->join_random_host();
  }
};

TEST(Session, LiveHostKeepsSendingKeepalives) {
  Fix f;
  Identity ident = Identity::generate(f.net->rng());
  ASSERT_TRUE(f.net->join_host(ident, 3).ok);
  f.sessions->track(ident.id(), [] { return true; });
  f.net->simulator().run_until(10'500.0);  // 10 intervals
  EXPECT_EQ(f.sessions->timeouts_fired(), 0u);
  EXPECT_GE(f.sessions->keepalives_sent(), 10u);
  EXPECT_TRUE(f.net->route(0, ident.id()).delivered);
}

TEST(Session, SilentHostTimesOutAndIsTornDown) {
  Fix f;
  Identity ident = Identity::generate(f.net->rng());
  ASSERT_TRUE(f.net->join_host(ident, 3).ok);
  bool alive = true;
  f.sessions->track(ident.id(), [&alive] { return alive; });
  f.net->simulator().run_until(2'500.0);
  alive = false;  // the host dies silently at t=2.5s
  f.net->simulator().run_until(10'000.0);
  EXPECT_EQ(f.sessions->timeouts_fired(), 1u);
  EXPECT_FALSE(f.sessions->tracking(ident.id()));
  // The teardown machinery ran: the ID is gone and the ring is whole.
  EXPECT_FALSE(f.net->route(0, ident.id()).delivered);
  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err)) << err;
}

TEST(Session, TimeoutHonorsMissLimit) {
  SessionConfig cfg;
  cfg.keepalive_interval_ms = 100.0;
  cfg.miss_limit = 5;
  Fix f(cfg);
  Identity ident = Identity::generate(f.net->rng());
  ASSERT_TRUE(f.net->join_host(ident, 2).ok);
  f.sessions->track(ident.id(), [] { return false; });  // dead from the start
  // After 4 intervals: not yet declared dead.
  f.net->simulator().run_until(450.0);
  EXPECT_EQ(f.sessions->timeouts_fired(), 0u);
  // After the fifth miss: dead.
  f.net->simulator().run_until(600.0);
  EXPECT_EQ(f.sessions->timeouts_fired(), 1u);
}

TEST(Session, UntrackPreventsTimeout) {
  Fix f;
  Identity ident = Identity::generate(f.net->rng());
  ASSERT_TRUE(f.net->join_host(ident, 4).ok);
  f.sessions->track(ident.id(), [] { return false; });
  f.sessions->untrack(ident.id());
  f.net->simulator().run_until(60'000.0);
  EXPECT_EQ(f.sessions->timeouts_fired(), 0u);
  EXPECT_TRUE(f.net->route(0, ident.id()).delivered);
}

TEST(Session, RetrackResetsEpoch) {
  Fix f;
  Identity ident = Identity::generate(f.net->rng());
  ASSERT_TRUE(f.net->join_host(ident, 4).ok);
  int flips = 0;
  f.sessions->track(ident.id(), [&flips] { return flips++ < 2; });
  // Re-track with an always-alive callback before the first dies out.
  f.sessions->track(ident.id(), [] { return true; });
  f.net->simulator().run_until(30'000.0);
  EXPECT_EQ(f.sessions->timeouts_fired(), 0u);
}

TEST(Session, GatewayCrashDoesNotFireSpuriousTeardown) {
  // Regression: a keepalive timer surviving a gateway crash kept charging
  // misses accrued against the DEAD gateway to the rehomed session, so a
  // host that was transiently silent across the crash got torn down by a
  // stale timer.  The session must follow the ID to its failover gateway
  // and restart the miss count there.
  SessionConfig cfg;
  cfg.keepalive_interval_ms = 100.0;
  cfg.miss_limit = 3;
  Fix f(cfg);
  Identity ident = Identity::generate(f.net->rng());
  ASSERT_TRUE(f.net->join_host(ident, 5).ok);
  const auto old_home = f.net->hosting_router(ident.id());
  ASSERT_TRUE(old_home.has_value());
  bool alive = false;  // transiently silent through the crash
  f.sessions->track(ident.id(), [&alive] { return alive; });

  f.net->simulator().run_until(250.0);  // two misses at the old gateway
  (void)f.net->fail_router(*old_home);  // crash; ID rejoins via failover
  const auto new_home = f.net->hosting_router(ident.id());
  ASSERT_TRUE(new_home.has_value());
  ASSERT_NE(*new_home, *old_home);

  // Two more silent intervals: with the old carried-over count this is the
  // third miss and a spurious teardown; with the rehome reset it is only
  // the second.
  f.net->simulator().run_until(450.0);
  alive = true;
  f.net->simulator().run_until(1'000.0);

  EXPECT_EQ(f.sessions->timeouts_fired(), 0u);
  EXPECT_EQ(f.sessions->sessions_rehomed(), 1u);
  EXPECT_TRUE(f.sessions->tracking(ident.id()));
  EXPECT_TRUE(f.net->route(0, ident.id()).delivered);
}

TEST(Session, OrphanedIdRetiresWithoutSpuriousTimeout) {
  // Regression: group-held IDs are not auto-rejoined after a router crash,
  // so their session timers used to keep ticking against a directory entry
  // that no longer exists and eventually fired fail_host on a ghost --
  // counted as a host timeout that never happened.
  SessionConfig cfg;
  cfg.keepalive_interval_ms = 100.0;
  cfg.miss_limit = 3;
  Fix f(cfg);
  Identity gid = Identity::generate(f.net->rng());
  ASSERT_TRUE(
      f.net->join_group_id(gid.id(), gid.public_key(), 5).ok);
  const auto home = f.net->hosting_router(gid.id());
  ASSERT_TRUE(home.has_value());
  f.sessions->track(gid.id(), [] { return false; });  // members fell silent

  f.net->simulator().run_until(150.0);  // one miss, session established
  (void)f.net->fail_router(*home);      // group ID dies with the router
  ASSERT_FALSE(f.net->hosting_router(gid.id()).has_value());
  f.net->simulator().run_until(1'000.0);

  EXPECT_EQ(f.sessions->timeouts_fired(), 0u);
  EXPECT_EQ(f.sessions->sessions_orphaned(), 1u);
  EXPECT_FALSE(f.sessions->tracking(gid.id()));
}

TEST(Session, LostKeepalivesTolerateUpToMissLimit) {
  // A lossy access link eats keepalives from a perfectly healthy host; the
  // gateway must ride out up to miss_limit-1 consecutive losses and only
  // declare death at the limit -- never on the first lost packet.
  SessionConfig cfg;
  cfg.keepalive_interval_ms = 100.0;
  cfg.miss_limit = 4;
  Fix f(cfg);
  Identity ident = Identity::generate(f.net->rng());
  ASSERT_TRUE(f.net->join_host(ident, 3).ok);
  f.sessions->track(ident.id(), [] { return true; });

  sim::FaultPlan plan;
  plan.defaults.loss = 1.0;  // the link eats every keepalive
  sim::FaultInjector inj(plan, 13, &f.net->simulator().metrics());
  f.net->set_fault_injector(&inj);

  // Three straight losses: still alive.
  f.net->simulator().run_until(350.0);
  EXPECT_EQ(f.sessions->timeouts_fired(), 0u);
  EXPECT_EQ(f.sessions->keepalives_lost(), 3u);
  EXPECT_TRUE(f.sessions->tracking(ident.id()));
  // The fourth miss crosses the limit.
  f.net->simulator().run_until(450.0);
  EXPECT_EQ(f.sessions->timeouts_fired(), 1u);
  EXPECT_FALSE(f.sessions->tracking(ident.id()));
}

TEST(Session, ManyConcurrentSessions) {
  SessionConfig cfg;
  cfg.keepalive_interval_ms = 50.0;
  Fix f(cfg);
  std::vector<Identity> hosts;
  std::vector<bool> alive(30, true);
  for (int i = 0; i < 30; ++i) {
    Identity ident = Identity::generate(f.net->rng());
    const auto gw = static_cast<graph::NodeIndex>(
        f.net->rng().index(f.net->router_count()));
    ASSERT_TRUE(f.net->join_host(ident, gw).ok);
    const std::size_t k = hosts.size();
    f.sessions->track(ident.id(), [&alive, k] { return alive[k]; });
    hosts.push_back(ident);
  }
  // A third of them die silently.
  for (std::size_t k = 0; k < 30; k += 3) alive[k] = false;
  f.net->simulator().run_until(5'000.0);
  EXPECT_EQ(f.sessions->timeouts_fired(), 10u);
  std::string err;
  EXPECT_TRUE(f.net->verify_rings(&err)) << err;
  for (std::size_t k = 0; k < 30; ++k) {
    EXPECT_EQ(f.net->route(0, hosts[k].id()).delivered, alive[k]) << k;
  }
}

}  // namespace
}  // namespace rofl::intra
