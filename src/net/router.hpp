// router.hpp -- the control plane run over a real Transport.
//
// LiveRouter is the distributed counterpart of the simulator's intradomain
// engine: each process-or-thread-resident router owns the virtual nodes homed
// on it and runs ROFL's join protocol purely by exchanging wire::Packet
// frames through a Transport -- no shared state, no global event queue, no
// oracle.  The message set is exactly the simulator's (the 11 ControlMessage
// types); no new wire types were added for live operation:
//
//   Locate            the greedy predecessor-locate walk, forwarded router to
//                     router; the requester's router id rides in the packet
//                     source label (NodeId::from_u64(router)).
//   PointerInstall    op=2 (refill) doubles as the locate answer sent back to
//                     the requester; op=1 (set-predecessor) tells the old
//                     successor's owner about the splice, retried until acked.
//   JoinRequest       sent by the joiner's gateway to the located predecessor
//                     owner, carrying the self-certifying public key and the
//                     compact finger payload whose size section 6.3 prices
//                     (256 fingers -> 1638 bytes).
//   JoinReply         the splice answer: predecessor + adopted successor set.
//                     An *empty* successor set is a redirect -- the ring moved
//                     under the walk and the gateway must re-locate.
//   Keepalive         seq echoes the install nonce: the ack that retires a
//                     pending set-predecessor retransmission.
//
// Reliability: the transport is best-effort by design (impairment layer,
// kernel drops, RX-ring overflow), so every exchange the router originates
// sits behind sim::RetryPolicy timers -- resend with exponential backoff, and
// on exhaustion restart the locate from the bootstrap router.  Receivers are
// idempotent instead of careful: the splicer caches its JoinReply per joined
// id and re-replies verbatim, set-predecessor applies the Chord notify rule
// (accept only a strictly closer predecessor) so stale or reordered installs
// cannot regress a pointer, and duplicate transmissions never arrive at all
// (transport dedup).
//
// Threading: a LiveRouter is single-threaded -- all calls from one driver
// thread, with step(now_ms) doing one pump/drain/retry pass.  The UDP mesh
// gives each router its own thread and wall-clock time; the loopback mesh
// round-robins all routers on one thread with a virtual clock, which is what
// makes the byte-parity runs deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/faults.hpp"
#include "util/identity.hpp"
#include "util/node_id.hpp"
#include "wire/messages.hpp"

namespace rofl::net {

/// One ring-resident virtual node homed on this router.
struct Vnode {
  NodeId id;
  NodeId succ;
  RouterId succ_owner = 0;
  NodeId pred;
  RouterId pred_owner = 0;
};

struct LiveRouterConfig {
  RouterId self = 0;
  RouterId bootstrap = 0;          ///< where fresh locate walks start
  std::uint32_t fingers = 256;     ///< CompactFingers per JoinRequest (6.3)
  std::uint32_t max_outstanding = 8;  ///< concurrent joins per gateway
  sim::RetryPolicy retry{/*max_attempts=*/10, /*timeout_ms=*/40.0,
                         /*backoff=*/1.6, /*max_timeout_ms=*/500.0};
  /// Netem-style impairment applied at this router's socket boundary.
  sim::NetworkConditions conditions;
  std::uint64_t fault_seed = 1;
  /// Timeline window width in ms; 0 disables the timeline.
  double timeline_window_ms = 0.0;
};

class LiveRouter {
 public:
  /// `transport` must outlive the router; the router installs its own
  /// FaultInjector (built from cfg.conditions) on it.
  LiveRouter(LiveRouterConfig cfg, Transport* transport);

  /// Installs the bootstrap identity with self-looped pointers -- the one-node
  /// ring every walk can terminate against.  Call on exactly one router.
  void seed(const Identity& first);

  /// Queues one host identity this gateway will join into the ring.
  void enqueue_join(Identity ident);

  /// One event-loop pass: flush delayed sends, drain received frames, start
  /// queued joins, fire retry timers, advance the timeline.
  void step(double now_ms);

  /// True when every queued join completed and no install awaits an ack.
  [[nodiscard]] bool quiescent() const {
    return queued_.empty() && active_.empty() && installs_.empty();
  }

  [[nodiscard]] std::uint64_t joins_completed() const {
    return joins_completed_;
  }
  [[nodiscard]] std::uint64_t joins_queued_total() const {
    return joins_queued_total_;
  }

  /// Harness (non-kData) frames received, for the mesh driver to consume.
  bool poll_harness(RxFrame& out);

  [[nodiscard]] const std::map<NodeId, Vnode>& vnodes() const {
    return vnodes_;
  }
  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] obs::Timeline* timeline() { return timeline_.get(); }
  [[nodiscard]] Transport& transport() { return *transport_; }

  /// End-of-run: fold the transport's pump counters into the registry and
  /// flush the timeline.  Call once, after traffic has stopped.
  void finish(double now_ms);

  /// Diagnostic snapshot of everything that keeps quiescent() false: active
  /// join tasks, unacked installs, and queue depth.  The mesh drivers print
  /// this when a run misses its deadline and ROFL_NET_DEBUG=1 is set.
  void debug_dump(std::ostream& os) const;

 private:
  struct JoinTask {
    explicit JoinTask(Identity i) : ident(std::move(i)) {}
    Identity ident;
    NodeId target;
    std::uint64_t nonce = 0;
    enum class St : std::uint8_t { kLocating, kJoining } st = St::kLocating;
    RouterId locate_at = 0;  ///< router the current locate was sent to
    RouterId join_to = 0;    ///< predecessor owner the JoinRequest went to
    unsigned attempt = 0;
    double timeout_ms = 0.0;
    double deadline_ms = 0.0;
    double started_ms = 0.0;
  };

  /// A set-predecessor install awaiting its Keepalive ack.
  struct PendingInstall {
    RouterId dst = 0;
    wire::msg::PointerInstall msg;
    unsigned attempt = 0;
    double timeout_ms = 0.0;
    double deadline_ms = 0.0;
  };

  void send_control(RouterId dst, const wire::msg::ControlMessage& m,
                    const NodeId& src, const NodeId& dst_id,
                    std::uint64_t trace_id, double now_ms);
  void start_locate(JoinTask& t, RouterId at, double now_ms);
  void send_join_request(JoinTask& t, double now_ms);
  void handle_frame(const RxFrame& rx, double now_ms);
  void on_locate(const wire::Packet& pkt, const wire::msg::Locate& m,
                 double now_ms);
  void on_pointer_install(const wire::Packet& pkt,
                          const wire::msg::PointerInstall& m, double now_ms);
  void on_join_request(const wire::Packet& pkt,
                       const wire::msg::JoinRequest& m, double now_ms);
  void on_join_reply(const wire::Packet& pkt, const wire::msg::JoinReply& m,
                     double now_ms);
  void on_keepalive(const wire::Packet& pkt, const wire::msg::Keepalive& m);
  void apply_set_predecessor(const NodeId& subject, const NodeId& neighbor,
                             RouterId neighbor_owner);
  void schedule_install(RouterId dst, const NodeId& subject,
                        const NodeId& neighbor, RouterId neighbor_owner,
                        double now_ms);
  /// Local vnode with the smallest nonzero clockwise distance to `target`
  /// (the best predecessor candidate this router knows); nullptr when none.
  Vnode* best_predecessor(const NodeId& target);
  JoinTask* task_by_nonce(std::uint64_t nonce);

  LiveRouterConfig cfg_;
  Transport* transport_;
  obs::Registry registry_;
  std::unique_ptr<sim::FaultInjector> injector_;
  std::unique_ptr<obs::Timeline> timeline_;

  std::map<NodeId, Vnode> vnodes_;
  std::deque<Identity> queued_;
  std::vector<JoinTask> active_;
  std::unordered_map<std::uint64_t, PendingInstall> installs_;
  /// Encoded JoinReply per spliced id: the idempotent re-reply for
  /// retransmitted JoinRequests.
  std::unordered_map<NodeId, std::vector<std::uint8_t>> join_cache_;
  std::deque<RxFrame> harness_rx_;

  std::uint64_t nonce_counter_ = 0;
  std::uint64_t joins_completed_ = 0;
  std::uint64_t joins_queued_total_ = 0;

  // MetricIds, registered in constructor order (identical across routers so
  // registries and timelines merge by dense id).
  obs::MetricId tx_frames_ = 0, tx_bytes_ = 0, rx_frames_ = 0, rx_bytes_ = 0;
  obs::MetricId dedup_dropped_ = 0, ring_dropped_ = 0, decode_failed_ = 0;
  obs::MetricId malformed_ = 0, throttle_waits_ = 0;
  obs::MetricId retrans_ = 0, acks_ = 0, redirects_ = 0, locate_steps_ = 0;
  obs::MetricId joins_done_id_ = 0, joins_rejected_ = 0;
  struct PerType {
    obs::MetricId msgs = 0;
    obs::MetricId bytes = 0;
  };
  std::unordered_map<std::uint8_t, PerType> per_type_;  // by PacketType
  obs::MetricId join_latency_ = 0;  // histogram
};

}  // namespace rofl::net
