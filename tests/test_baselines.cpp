#include <gtest/gtest.h>

#include "baselines/bgp_baseline.hpp"
#include "baselines/cmu_ethernet.hpp"
#include "baselines/ospf_routing.hpp"
#include "rofl/network.hpp"

namespace rofl::baselines {
namespace {

graph::IspTopology small_isp(std::uint64_t seed = 3) {
  Rng rng(seed);
  graph::IspParams p;
  p.router_count = 30;
  p.pop_count = 5;
  return graph::make_isp_topology(p, rng);
}

TEST(CmuEthernet, JoinFloodsWholeNetwork) {
  const auto topo = small_isp();
  CmuEthernet base(&topo);
  std::uint64_t directed_edges = 0;
  for (graph::NodeIndex u = 0; u < topo.graph.node_count(); ++u) {
    directed_edges += topo.graph.live_degree(u);
  }
  const auto js = base.join_host(NodeId::from_u64(42), 0);
  ASSERT_TRUE(js.ok);
  EXPECT_EQ(js.messages, 1 + directed_edges);
}

TEST(CmuEthernet, EveryRouterStoresEveryHost) {
  const auto topo = small_isp();
  CmuEthernet base(&topo);
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(base.join_host(NodeId::from_u64(i + 1), i % 30).ok);
  }
  EXPECT_EQ(base.entries_per_router(), 50u);
  EXPECT_EQ(base.host_count(), 50u);
}

TEST(CmuEthernet, RoutesShortestPathStretchOne) {
  const auto topo = small_isp();
  CmuEthernet base(&topo);
  ASSERT_TRUE(base.join_host(NodeId::from_u64(7), 12).ok);
  const auto rs = base.route(3, NodeId::from_u64(7));
  ASSERT_TRUE(rs.delivered);
  EXPECT_DOUBLE_EQ(rs.stretch, 1.0);
  EXPECT_FALSE(base.route(3, NodeId::from_u64(999)).delivered);
}

TEST(CmuEthernet, DuplicateAndLeave) {
  const auto topo = small_isp();
  CmuEthernet base(&topo);
  ASSERT_TRUE(base.join_host(NodeId::from_u64(1), 0).ok);
  EXPECT_FALSE(base.join_host(NodeId::from_u64(1), 1).ok);
  EXPECT_TRUE(base.leave_host(NodeId::from_u64(1)).ok);
  EXPECT_EQ(base.host_count(), 0u);
  EXPECT_FALSE(base.leave_host(NodeId::from_u64(1)).ok);
}

TEST(CmuEthernet, PaperRatioJoinOverheadVsRofl) {
  // Section 6.2: CMU-ETHERNET requires 37-181x more join messages than
  // ROFL.  On the small test ISP the ratio is lower but must be clearly
  // greater than 1; the bench reproduces the full-scale ratios.
  const auto topo = small_isp(9);
  CmuEthernet base(&topo);
  intra::Network net(&topo, {}, 10);
  std::uint64_t cmu = 0;
  std::uint64_t rofl = 0;
  for (int i = 0; i < 40; ++i) {
    const auto gw = static_cast<graph::NodeIndex>(
        net.rng().index(net.router_count()));
    Identity ident = Identity::generate(net.rng());
    const auto r = net.join_host(ident, gw);
    ASSERT_TRUE(r.ok);
    rofl += r.messages;
    const auto c = base.join_host(Identity::generate(net.rng()).id(), gw);
    ASSERT_TRUE(c.ok);
    cmu += c.messages;
  }
  EXPECT_GT(cmu, 3 * rofl);
}

TEST(OspfRouting, RoutesAndCountsTraversals) {
  const auto topo = small_isp();
  OspfRouting ospf(&topo);
  ospf.attach_host(NodeId::from_u64(5), 20);
  const auto rs = ospf.route(1, NodeId::from_u64(5));
  ASSERT_TRUE(rs.delivered);
  std::uint64_t total = 0;
  for (const auto t : ospf.traversals()) total += t;
  EXPECT_EQ(total, rs.physical_hops + 1u);  // every router on the path
  ospf.reset_traversals();
  std::uint64_t after = 0;
  for (const auto t : ospf.traversals()) after += t;
  EXPECT_EQ(after, 0u);
}

TEST(OspfRouting, UnknownHostUndelivered) {
  const auto topo = small_isp();
  OspfRouting ospf(&topo);
  EXPECT_FALSE(ospf.route(0, NodeId::from_u64(1)).delivered);
}

TEST(BgpBaseline, ShortestHopsIgnoresPolicy) {
  using graph::AsRel;
  // 1 - 0 - 2 with a peering shortcut 1~2: shortest = 1 hop, policy also 1.
  auto t = graph::AsTopology::from_links(
      3, {{1, 0, AsRel::kProvider}, {2, 0, AsRel::kProvider},
          {1, 2, AsRel::kPeer}});
  EXPECT_EQ(shortest_as_hops(t, 1, 2), 1u);
  EXPECT_EQ(bgp_policy_hops(t, 1, 2), 1u);
  EXPECT_EQ(bgp_policy_stretch(t, 1, 2), 1.0);
}

TEST(BgpBaseline, PolicyStretchAboveOneWhenValleyForbidden) {
  using graph::AsRel;
  //    0       1          0~1 peer at the top
  //    |       |
  //    2       3          2-3 have a *customer-customer* shortcut? Not
  // expressible; instead make the shortcut via a backup link which policy
  // routing may use but counts as provider hop; simplest: sibling stubs 4,5
  // under 2 and 3: shortest path 4-2-0-1-3-5 vs unconstrained with an extra
  // lateral link between 4 and 5 is impossible without a relationship; so we
  // instead verify stretch == 1 on pure hierarchies and nullopt on
  // partition.
  auto t = graph::AsTopology::from_links(
      6, {{2, 0, AsRel::kProvider}, {3, 1, AsRel::kProvider},
          {4, 2, AsRel::kProvider}, {5, 3, AsRel::kProvider},
          {0, 1, AsRel::kPeer}});
  EXPECT_EQ(shortest_as_hops(t, 4, 5), 5u);
  EXPECT_EQ(bgp_policy_hops(t, 4, 5), 5u);
  t.set_link_up(0, 1, false);
  EXPECT_EQ(bgp_policy_hops(t, 4, 5), std::nullopt);
  EXPECT_EQ(bgp_policy_stretch(t, 4, 5), std::nullopt);
}

TEST(BgpBaseline, PolicyStretchExceedsOneOnLateralCut) {
  using graph::AsRel;
  // Stub 3 buys from 1 and 2; 1 and 2 both buy from 0 and peer laterally;
  // additionally 4 buys from 1, 5 buys from 2, and 4~5 peer.  The
  // unconstrained shortest 4..5 path is 4-5? no link; 4-1-2-5 via the 1~2
  // peering = 3 hops; policy allows it too.  For a genuine gap, cut 1~2:
  // then unconstrained shortest is 4-1-0-2-5 = 4 via provider links, policy
  // also 4.  A gap requires a valley: 4-3-5 (customer-customer through 3),
  // which BGP forbids: shortest = 2 with the valley, policy = 4.
  auto t = graph::AsTopology::from_links(
      6, {{1, 0, AsRel::kProvider}, {2, 0, AsRel::kProvider},
          {3, 1, AsRel::kProvider}, {3, 2, AsRel::kProvider},
          {4, 1, AsRel::kProvider}, {5, 2, AsRel::kProvider}});
  // Unconstrained shortest 4..5: 4-1-3-2-5 (through the multihomed stub 3)
  // or 4-1-0-2-5, both 4 hops; policy path: 4-1-0-2-5 = 4 (relaying through
  // customer 3 is a valley and rejected by bgp_policy_hops).
  EXPECT_EQ(shortest_as_hops(t, 4, 5), 4u);
  EXPECT_EQ(bgp_policy_hops(t, 4, 5), 4u);
  // Now make the valley shorter: connect 4 and 5 directly to 3's providers?
  // Give 4 and 5 a second provider: 3 itself cannot be a provider (it's a
  // stub), so attach 4 and 5 below 3 instead.
  auto t2 = graph::AsTopology::from_links(
      6, {{1, 0, AsRel::kProvider}, {2, 0, AsRel::kProvider},
          {3, 1, AsRel::kProvider}, {3, 2, AsRel::kProvider},
          {4, 3, AsRel::kProvider}, {5, 3, AsRel::kProvider}});
  // 4..1: unconstrained 4-3-1 = 2; policy: customer can reach its
  // provider's provider the same way going up = 2.  But 1..2: unconstrained
  // 1-3-2 = 2 (valley through stub 3!), policy must climb: 1-0-2 = 2 as
  // well.  Tie here; assert policy never beats unconstrained.
  const auto s = shortest_as_hops(t2, 1, 2);
  const auto p = bgp_policy_hops(t2, 1, 2);
  ASSERT_TRUE(s.has_value() && p.has_value());
  EXPECT_GE(*p, *s);
}

TEST(BgpBaseline, PolicyNeverBeatsUnconstrainedOnGeneratedTopology) {
  Rng rng(44);
  graph::AsGenParams gp;
  gp.tier1_count = 3;
  gp.tier2_count = 8;
  gp.tier3_count = 15;
  gp.stub_count = 40;
  const auto t = graph::AsTopology::make_internet_like(gp, rng);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<graph::AsIndex>(rng.index(t.as_count()));
    const auto b = static_cast<graph::AsIndex>(rng.index(t.as_count()));
    const auto s = shortest_as_hops(t, a, b);
    const auto p = bgp_policy_hops(t, a, b);
    if (!s.has_value()) {
      continue;
    }
    ASSERT_TRUE(p.has_value()) << "policy path missing " << a << "->" << b;
    EXPECT_GE(*p, *s);
    const auto st = bgp_policy_stretch(t, a, b);
    if (a != b) {
      ASSERT_TRUE(st.has_value());
      EXPECT_GE(*st, 1.0);
    }
  }
}

}  // namespace
}  // namespace rofl::baselines
