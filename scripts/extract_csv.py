#!/usr/bin/env python3
"""Extract the CSV mirrors from bench output into per-table files.

Run the benches with ROFL_BENCH_CSV=1, pipe (or tee) the output here:

    ROFL_BENCH_CSV=1 ./build/bench/fig6_stretch_cache | \
        python3 scripts/extract_csv.py out/

Each "== banner ==" section's CSV blocks are written to
out/<slugified-banner>-<n>.csv.
"""
import pathlib
import re
import sys


def slug(text: str) -> str:
    text = re.sub(r"[^a-zA-Z0-9]+", "-", text.strip().lower())
    return text.strip("-")[:60] or "table"


def main() -> int:
    outdir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench_csv")
    outdir.mkdir(parents=True, exist_ok=True)
    banner = "output"
    counts: dict[str, int] = {}
    csv_lines: list[str] | None = None
    written = 0
    for line in sys.stdin:
        line = line.rstrip("\n")
        m = re.match(r"^== (.*) ==$", line)
        if m:
            banner = slug(m.group(1))
            continue
        if line == "--- csv ---":
            csv_lines = []
            continue
        if line == "--- end csv ---" and csv_lines is not None:
            counts[banner] = counts.get(banner, 0) + 1
            path = outdir / f"{banner}-{counts[banner]}.csv"
            path.write_text("\n".join(csv_lines) + "\n")
            print(f"wrote {path}", file=sys.stderr)
            written += 1
            csv_lines = None
            continue
        if csv_lines is not None:
            csv_lines.append(line)
        else:
            print(line)  # pass the human-readable output through
    print(f"[{written} csv file(s) in {outdir}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
