// Unit + integration tests for the packet flight recorder (src/obs):
// ring-buffer wrap-around, trace-id propagation across the intradomain ->
// interdomain handoff, and trace determinism for identically seeded runs.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include "interdomain/inter_network.hpp"
#include "rofl/network.hpp"

namespace rofl::obs {
namespace {

HopRecord rec_for(std::uint64_t trace_id, std::uint32_t node) {
  HopRecord r;
  r.trace_id = trace_id;
  r.node = node;
  r.kind = HopKind::kForward;
  return r;
}

// -- ring mechanics ---------------------------------------------------------

TEST(FlightRecorder, FillsThenWrapsOverwritingOldestFirst) {
  FlightRecorder fr(8);
  EXPECT_EQ(fr.capacity(), 8u);
  for (std::uint32_t i = 0; i < 5; ++i) fr.record(rec_for(1, i));
  EXPECT_EQ(fr.size(), 5u);
  EXPECT_FALSE(fr.wrapped());

  for (std::uint32_t i = 5; i < 20; ++i) fr.record(rec_for(1, i));
  EXPECT_EQ(fr.size(), 8u);
  EXPECT_TRUE(fr.wrapped());
  EXPECT_EQ(fr.records_seen(), 20u);

  // Only the newest 8 survive, oldest first, with recorder-global seq.
  const auto all = fr.all();
  ASSERT_EQ(all.size(), 8u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].node, 12u + i);
    EXPECT_EQ(all[i].seq, 12u + i);
  }
}

TEST(FlightRecorder, WrapDropsOldHopsFromATraceButKeepsNewOnes) {
  FlightRecorder fr(4);
  for (std::uint32_t i = 0; i < 3; ++i) fr.record(rec_for(7, i));
  for (std::uint32_t i = 0; i < 3; ++i) fr.record(rec_for(8, 100 + i));
  // Trace 7 lost its first two hops to the wrap; trace 8 is intact.
  const auto t7 = fr.trace(7);
  ASSERT_EQ(t7.size(), 1u);
  EXPECT_EQ(t7[0].node, 2u);
  EXPECT_EQ(fr.trace(8).size(), 3u);
}

TEST(FlightRecorder, ClearEmptiesRingButKeepsAllocatingForward) {
  FlightRecorder fr(4);
  const std::uint64_t t1 = fr.new_trace();
  fr.record(rec_for(t1, 0));
  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  const std::uint64_t t2 = fr.new_trace();
  EXPECT_GT(t2, t1);  // ids keep counting across clear
  fr.record(rec_for(t2, 1));
  ASSERT_EQ(fr.size(), 1u);
  EXPECT_GT(fr.all()[0].seq, 0u);  // seq keeps counting too
}

TEST(FlightRecorder, FormatTraceReadsLikeTraceroute) {
  FlightRecorder fr(16);
  const std::uint64_t id = fr.new_trace();
  HopRecord start = rec_for(id, 3);
  start.kind = HopKind::kStart;
  fr.record(start);
  fr.record(rec_for(id, 4));
  HopRecord done = rec_for(id, 5);
  done.kind = HopKind::kDeliver;
  fr.record(done);

  const std::string dump = fr.format_trace(id);
  EXPECT_NE(dump.find("trace 1 (3 hops):"), std::string::npos);
  EXPECT_NE(dump.find("start"), std::string::npos);
  EXPECT_NE(dump.find("forward"), std::string::npos);
  EXPECT_NE(dump.find("deliver"), std::string::npos);
  EXPECT_NE(dump.find("router     4"), std::string::npos);
}

// -- cross-layer integration ------------------------------------------------

graph::AsTopology diamond() {
  using graph::AsRel;
  graph::AsTopology t = graph::AsTopology::from_links(
      8, {{2, 0, AsRel::kProvider},
          {3, 0, AsRel::kProvider},
          {4, 1, AsRel::kProvider},
          {5, 2, AsRel::kProvider},
          {6, 2, AsRel::kProvider},
          {7, 3, AsRel::kProvider},
          {0, 1, AsRel::kPeer}});
  for (graph::AsIndex a : {5, 6, 7, 4}) t.set_host_count(a, 100);
  return t;
}

TEST(FlightRecorder, TraceIdPropagatesAcrossIntraToInterHandoff) {
  // The hybrid deployment: one shared recorder serves the ISP-internal
  // network and the interdomain overlay, and the trace id allocated for the
  // intradomain leg is handed to InterNetwork::route so both legs land
  // under one flight.
  FlightRecorder recorder(1 << 12);

  Rng trng(5);
  graph::IspParams p;
  p.router_count = 24;
  p.pop_count = 4;
  const graph::IspTopology isp = graph::make_isp_topology(p, trng);
  intra::Network intra_net(&isp, intra::Config{}, 11);
  intra_net.set_flight_recorder(&recorder);

  const graph::AsTopology as_topo = diamond();
  inter::InterNetwork inter_net(&as_topo, inter::InterConfig{}, 13);
  inter_net.set_flight_recorder(&recorder);

  // Intradomain leg: join a destination and route to it.
  Identity dest_ident = Identity::generate(intra_net.rng());
  ASSERT_TRUE(intra_net.join_host(dest_ident, 2).ok);
  const intra::RouteStats rs = intra_net.route(9, dest_ident.id());
  ASSERT_TRUE(rs.delivered);
  ASSERT_NE(rs.trace_id, 0u);

  // Interdomain leg: an ID homed elsewhere, routed under the same trace id
  // (the packet left the ISP and continues on the AS overlay).
  Identity far_ident = Identity::generate(inter_net.rng());
  ASSERT_TRUE(inter_net.join_host(far_ident, 7,
                                  inter::JoinStrategy::kRecursiveMultihomed)
                  .ok);
  const inter::InterRouteStats irs =
      inter_net.route(5, far_ident.id(), nullptr, rs.trace_id);
  EXPECT_EQ(irs.trace_id, rs.trace_id);

  const auto flight = recorder.trace(rs.trace_id);
  ASSERT_GE(flight.size(), 4u);
  bool saw_intra = false, saw_inter = false;
  for (const HopRecord& h : flight) {
    saw_intra |= h.domain == HopDomain::kIntra;
    saw_inter |= h.domain == HopDomain::kInter;
  }
  EXPECT_TRUE(saw_intra);
  EXPECT_TRUE(saw_inter);
  // One flight, recorded in order: seq strictly increases.
  for (std::size_t i = 1; i < flight.size(); ++i) {
    EXPECT_GT(flight[i].seq, flight[i - 1].seq);
  }
  // Fresh-id allocation still works for untraced entries.
  const inter::InterRouteStats own =
      inter_net.route(6, far_ident.id(), nullptr, 0);
  EXPECT_NE(own.trace_id, 0u);
  EXPECT_NE(own.trace_id, rs.trace_id);
}

TEST(FlightRecorder, IdenticallySeededRunsProduceIdenticalTraces) {
  // The recorder only observes; with fixed seeds, two runs must log exactly
  // the same hops (same ids, seqs, nodes, kinds, times).
  const auto run = [](FlightRecorder& recorder) {
    Rng trng(21);
    graph::IspParams p;
    p.router_count = 32;
    p.pop_count = 4;
    const graph::IspTopology isp = graph::make_isp_topology(p, trng);
    intra::Network net(&isp, intra::Config{}, 31);
    net.set_flight_recorder(&recorder);
    std::vector<NodeId> ids;
    for (int i = 0; i < 40; ++i) {
      Identity ident = Identity::generate(net.rng());
      const auto gw =
          static_cast<graph::NodeIndex>(net.rng().index(net.router_count()));
      if (net.join_host(ident, gw).ok) ids.push_back(ident.id());
    }
    for (std::size_t i = 0; i < 60 && !ids.empty(); ++i) {
      const NodeId dest = ids[net.rng().index(ids.size())];
      const auto src =
          static_cast<graph::NodeIndex>(net.rng().index(net.router_count()));
      (void)net.route(src, dest);
    }
  };

  FlightRecorder a(1 << 12), b(1 << 12);
  run(a);
  run(b);
  ASSERT_GT(a.size(), 0u);
  EXPECT_EQ(a.all(), b.all());
}

}  // namespace
}  // namespace rofl::obs
