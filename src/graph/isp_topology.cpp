#include "graph/isp_topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rofl::graph {

IspTopology make_isp_topology(const IspParams& params, Rng& rng) {
  assert(params.router_count >= 2);
  assert(params.pop_count >= 1 && params.pop_count <= params.router_count);

  IspTopology topo;
  topo.name = params.name;
  topo.host_count = params.host_count;
  topo.graph = Graph(params.router_count);
  topo.pop_of.resize(params.router_count);
  topo.is_backbone.assign(params.router_count, false);
  topo.pops.resize(params.pop_count);

  // Distribute routers over PoPs: every PoP gets a base allotment, the
  // remainder is spread over the first PoPs (mirrors the uneven PoP sizes in
  // measured maps where a few city PoPs dominate).
  const std::size_t base = params.router_count / params.pop_count;
  std::size_t next_router = 0;
  for (std::size_t p = 0; p < params.pop_count; ++p) {
    std::size_t count = base + (p < params.router_count % params.pop_count ? 1 : 0);
    for (std::size_t i = 0; i < count; ++i) {
      const auto r = static_cast<NodeIndex>(next_router++);
      topo.pop_of[r] = static_cast<std::uint32_t>(p);
      topo.pops[p].push_back(r);
    }
  }

  // Within each PoP: mark backbone routers (at least one), connect them in a
  // ring plus chords, and dual-home every access router onto the backbone.
  for (std::size_t p = 0; p < params.pop_count; ++p) {
    auto& members = topo.pops[p];
    const std::size_t bb_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(
               params.backbone_fraction * static_cast<double>(members.size()))));
    std::vector<NodeIndex> backbone(members.begin(),
                                    members.begin() + static_cast<long>(bb_count));
    for (NodeIndex r : backbone) topo.is_backbone[r] = true;

    for (std::size_t i = 0; i + 1 < backbone.size(); ++i) {
      topo.graph.add_edge(backbone[i], backbone[i + 1],
                          params.intra_pop_latency_ms);
    }
    if (backbone.size() > 2) {
      topo.graph.add_edge(backbone.back(), backbone.front(),
                          params.intra_pop_latency_ms);
      // A few chords for intra-PoP redundancy.
      const std::size_t chords = backbone.size() / 2;
      for (std::size_t c = 0; c < chords; ++c) {
        const NodeIndex a = backbone[rng.index(backbone.size())];
        const NodeIndex b = backbone[rng.index(backbone.size())];
        topo.graph.add_edge(a, b, params.intra_pop_latency_ms);
      }
    }

    for (std::size_t i = bb_count; i < members.size(); ++i) {
      const NodeIndex access = members[i];
      const unsigned uplinks =
          std::min<unsigned>(params.access_uplinks,
                             static_cast<unsigned>(backbone.size()));
      // First uplink is deterministic (round robin) so every access router
      // is attached even if random picks collide.
      topo.graph.add_edge(access, backbone[(i - bb_count) % backbone.size()],
                          params.intra_pop_latency_ms);
      for (unsigned u = 1; u < uplinks; ++u) {
        topo.graph.add_edge(access, backbone[rng.index(backbone.size())],
                            params.intra_pop_latency_ms);
      }
    }
  }

  // Inter-PoP mesh: a PoP ring guarantees connectivity; extra random PoP
  // adjacencies up to the target degree add the meshiness of core networks.
  auto pop_gateway = [&](std::size_t p) -> NodeIndex {
    const auto& members = topo.pops[p];
    std::vector<NodeIndex> bbs;
    for (NodeIndex r : members) {
      if (topo.is_backbone[r]) bbs.push_back(r);
    }
    return bbs[rng.index(bbs.size())];
  };
  auto inter_latency = [&]() {
    return params.inter_pop_latency_min_ms +
           rng.uniform() * (params.inter_pop_latency_max_ms -
                            params.inter_pop_latency_min_ms);
  };
  if (params.pop_count > 1) {
    for (std::size_t p = 0; p < params.pop_count; ++p) {
      const std::size_t q = (p + 1) % params.pop_count;
      topo.graph.add_edge(pop_gateway(p), pop_gateway(q), inter_latency());
    }
    const auto target_extra = static_cast<std::size_t>(std::max(
        0.0, (params.inter_pop_degree - 2.0) *
                 static_cast<double>(params.pop_count) / 2.0));
    for (std::size_t e = 0; e < target_extra; ++e) {
      const std::size_t p = rng.index(params.pop_count);
      const std::size_t q = rng.index(params.pop_count);
      if (p == q) continue;
      topo.graph.add_edge(pop_gateway(p), pop_gateway(q), inter_latency());
    }
  }

  assert(topo.graph.connected());
  return topo;
}

IspParams rocketfuel_params(RocketfuelAs which) {
  IspParams p;
  switch (which) {
    case RocketfuelAs::kAs1221:
      p.name = "AS1221";
      p.router_count = 318;
      p.pop_count = 27;  // Telstra PoPs per Rocketfuel
      p.host_count = 2'600'000;
      break;
    case RocketfuelAs::kAs1239:
      p.name = "AS1239";
      p.router_count = 604;
      p.pop_count = 43;  // Sprint
      p.host_count = 10'000'000;
      break;
    case RocketfuelAs::kAs3257:
      p.name = "AS3257";
      p.router_count = 240;
      p.pop_count = 25;  // Tiscali
      p.host_count = 500'000;
      break;
    case RocketfuelAs::kAs3967:
      p.name = "AS3967";
      p.router_count = 201;
      p.pop_count = 21;  // Exodus
      p.host_count = 2'100'000;
      break;
  }
  return p;
}

IspTopology make_rocketfuel_like(RocketfuelAs which, Rng& rng) {
  return make_isp_topology(rocketfuel_params(which), rng);
}

std::vector<RocketfuelAs> all_rocketfuel_ases() {
  return {RocketfuelAs::kAs1221, RocketfuelAs::kAs1239,
          RocketfuelAs::kAs3257, RocketfuelAs::kAs3967};
}

}  // namespace rofl::graph
